package shieldd_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"heartshield/internal/faultnet"
	"heartshield/internal/shieldd"
	"heartshield/internal/wire"
)

// chaosExchanges is the per-session exchange count of the chaos soak.
const chaosExchanges = 4

// chaosResp is one exchange response in comparable form: the payload
// bytes as a string, the command, and the exact float64 values.
// Byte-identical means these compare equal field-for-field.
type chaosResp struct {
	Response string
	Command  string
	BER      float64
	Cancel   float64
}

// chaosReport is one session's observable result stream, in order.
type chaosReport [chaosExchanges]chaosResp

// runChaosSession drives one session's fixed exchange script (alternate
// interrogate / set-therapy) and returns its report.
func runChaosSession(c *shieldd.Client) (chaosReport, error) {
	var rep chaosReport
	for i := 0; i < chaosExchanges; i++ {
		cmd := wire.CmdInterrogate
		if i%2 == 1 {
			cmd = wire.CmdSetTherapy
		}
		r, err := c.Exchange(0, cmd)
		if err != nil {
			return rep, fmt.Errorf("exchange %d: %w", i, err)
		}
		rep[i] = chaosResp{
			Response: string(r.Response),
			Command:  r.ResponseCommand,
			BER:      r.EavesBER,
			Cancel:   r.CancellationDB,
		}
	}
	return rep, nil
}

// TestChaosUDPSessions is the chaos soak wall: 32 concurrent datagram
// sessions through a fault network that drops 10%, duplicates 5%, and
// reorders 5% of all datagrams (plus occasional corruption), asserting
//
//   - every exchange eventually completes (the retry/dedup layer hides
//     the loss),
//   - each session's report stream is byte-identical to the loss-free
//     in-process run at the same seed (exactly-once execution: a
//     retransmitted request must never re-run against the scenario),
//   - the securelink receive window finally sees real traffic: across
//     the fleet, replay drops (duplicates) and window accepts
//     (reordering) are both nonzero, server- and client-side.
//
// The impairment schedule is deterministic per (network seed, flow), so
// the same run can be replayed exactly; it also runs under -race via
// the make race leg.
func TestChaosUDPSessions(t *testing.T) {
	const nSessions = 32
	imp := faultnet.Impairment{
		Drop:    0.10,
		Dup:     0.05,
		Reorder: 0.05,
		Corrupt: 0.01,
	}
	nw := faultnet.New(424242, imp)
	defer nw.Close()
	srv := startPacketServer(t, nw, "server", shieldd.ServerConfig{MaxSessions: nSessions})

	// Loss-free expectation per seed, via the in-process pipe path on
	// the same server (also exercises pool recycling between the two
	// runs of each seed).
	want := make([]chaosReport, nSessions)
	for i := range want {
		c, err := srv.Pipe(shieldd.SessionOptions{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = runChaosSession(c)
		if err != nil {
			t.Fatalf("loss-free session %d: %v", i, err)
		}
		_ = c.Close()
	}

	got := make([]chaosReport, nSessions)
	mets := make([]*wire.MetricsResp, nSessions)
	transports := make([]shieldd.TransportStats, nSessions)
	errs := make([]error, nSessions)
	var wg sync.WaitGroup
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pc, err := nw.Listen(fmt.Sprintf("chaos-client-%02d", i))
			if err != nil {
				errs[i] = err
				return
			}
			c, err := shieldd.NewPacketClient(pc, faultnet.Addr("server"), testSecret, shieldd.SessionOptions{
				Seed:         int64(i + 1),
				RetryTimeout: 15 * time.Millisecond,
				MaxRetries:   12,
			})
			if err != nil {
				pc.Close()
				errs[i] = fmt.Errorf("dial: %w", err)
				return
			}
			defer c.Close()
			got[i], errs[i] = runChaosSession(c)
			if errs[i] == nil {
				mets[i], errs[i] = c.Metrics()
			}
			transports[i] = c.TransportStats()
		}(i)
	}
	wg.Wait()

	var sumReplay, sumWindow, sumSrvRetrans, sumCliRetrans uint64
	for i := 0; i < nSessions; i++ {
		if errs[i] != nil {
			t.Errorf("session %d: %v", i, errs[i])
			continue
		}
		if got[i] != want[i] {
			t.Errorf("session %d (seed %d): chaos report diverged from loss-free run\n got %+v\nwant %+v",
				i, i+1, got[i], want[i])
		}
		if mets[i].Exchanges != chaosExchanges {
			t.Errorf("session %d executed %d exchanges, want exactly %d (dedup must stop re-execution)",
				i, mets[i].Exchanges, chaosExchanges)
		}
		sumReplay += mets[i].ReplayDrops
		sumWindow += mets[i].WindowAccepts
		sumSrvRetrans += mets[i].Retransmits
		sumCliRetrans += transports[i].Retransmits
	}

	// The receive window must have been genuinely exercised: with 5%
	// duplication the server sees replays, and with 5% reordering it
	// accepts frames out of order. Summed over 32 sessions these are
	// never zero unless the impairment layer is disconnected.
	if sumReplay == 0 {
		t.Error("no securelink replay drops across 32 impaired sessions: duplicates never reached the window")
	}
	if sumWindow == 0 {
		t.Error("no securelink window accepts across 32 impaired sessions: reordering never reached the window")
	}
	if sumCliRetrans == 0 {
		t.Error("no client retransmits across 32 impaired sessions at 10% drop")
	}
	t.Logf("chaos fleet: server replayDrops=%d windowAccepts=%d cachedResends=%d clientRetransmits=%d",
		sumReplay, sumWindow, sumSrvRetrans, sumCliRetrans)

	// Each session's metrics were snapshotted before its BYE, so the
	// server-wide counter (which keeps counting cached resends of late
	// duplicates and of the BYE itself) is at least the per-session sum.
	snap := srv.Metrics()
	if snap.TotalRetransmits < sumSrvRetrans {
		t.Errorf("server-wide retransmits %d < per-session sum %d", snap.TotalRetransmits, sumSrvRetrans)
	}
}

// TestChaosSpuriousRetransmitsAreHarmless forces the retry timer far
// below the exchange compute time on a PERFECT network, so nearly every
// request is retransmitted while its original is still executing. The
// dedup layer must drop every duplicate: results identical to the
// in-process run and exactly chaosExchanges executions.
func TestChaosSpuriousRetransmitsAreHarmless(t *testing.T) {
	nw := faultnet.New(7, faultnet.Impairment{})
	defer nw.Close()
	srv := startPacketServer(t, nw, "server", shieldd.ServerConfig{})

	p, err := srv.Pipe(shieldd.SessionOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runChaosSession(p)
	if err != nil {
		t.Fatal(err)
	}
	_ = p.Close()

	c := dialPacket(t, nw, "eager-client", "server", shieldd.SessionOptions{
		Seed: 9, RetryTimeout: time.Millisecond, MaxRetries: 40,
	})
	defer c.Close()
	got, err := runChaosSession(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("spurious retransmits changed results:\n got %+v\nwant %+v", got, want)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Exchanges != chaosExchanges {
		t.Errorf("%d exchanges executed, want %d: a duplicate was re-executed", m.Exchanges, chaosExchanges)
	}
	if ts := c.TransportStats(); ts.Retransmits == 0 {
		t.Error("1ms retry timer produced zero retransmits: the retry layer is not engaged")
	}
}
