package shieldd

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"heartshield/internal/wire"
	"heartshield/internal/wire/dgram"
)

// transportConn is the frame transport the session loops (server
// serveV1/serveV2, client mux) are written against: a way to move
// securelink-sealed frames, plus the two properties that distinguish a
// datagram transport from a stream — whether a given inbound frame is a
// plaintext handshake datagram, and whether the transport is unreliable
// (loss, duplication, and reordering are normal, so a failed securelink
// Open means "drop the datagram", not "tear the session down").
type transportConn interface {
	// readFrame returns the next inbound frame. handshake reports a
	// plaintext handshake frame (only ever true on datagram transports,
	// where a retransmitted HELLO can trail into an established session).
	readFrame() (payload []byte, handshake bool, err error)
	// writeFrame sends one sealed session frame.
	writeFrame(payload []byte) error
	close() error
	setReadDeadline(t time.Time) error
	// unreliable reports datagram loss semantics: securelink Open
	// failures are dropped datagrams, request IDs may arrive twice, and
	// responses may need re-sending from the dedup cache.
	unreliable() bool
}

// streamConn adapts a net.Conn with the wire length-prefixed framing —
// the TCP / net.Pipe transport the server has always spoken.
type streamConn struct {
	c net.Conn
}

func (s *streamConn) readFrame() ([]byte, bool, error) {
	p, err := wire.ReadFrame(s.c)
	return p, false, err
}

func (s *streamConn) writeFrame(p []byte) error         { return wire.WriteFrame(s.c, p) }
func (s *streamConn) close() error                      { return s.c.Close() }
func (s *streamConn) setReadDeadline(t time.Time) error { return s.c.SetReadDeadline(t) }
func (s *streamConn) unreliable() bool                  { return false }

// packetTC adapts a dgram frame connection (client Conn or server
// PeerConn): one datagram per frame, kind byte distinguishing plaintext
// handshake retransmits from sealed session frames.
type packetTC struct {
	fc dgram.FrameConn
}

func (p *packetTC) readFrame() ([]byte, bool, error) {
	kind, payload, err := p.fc.ReadFrame()
	if err != nil {
		return nil, false, err
	}
	return payload, kind == dgram.KindHandshake, nil
}

func (p *packetTC) writeFrame(b []byte) error         { return p.fc.WriteFrame(dgram.KindSealed, b) }
func (p *packetTC) close() error                      { return p.fc.Close() }
func (p *packetTC) setReadDeadline(t time.Time) error { return p.fc.SetReadDeadline(t) }
func (p *packetTC) unreliable() bool                  { return true }

// Datagram-transport session parameters.
const (
	// dgramWindow is the securelink receive window on datagram sessions:
	// large enough to absorb retransmit-induced reordering, far below the
	// 63-position cap.
	dgramWindow = 32
	// defaultRetryTimeout is the client's initial retransmit timeout.
	defaultRetryTimeout = 250 * time.Millisecond
	// defaultMaxRetries bounds retransmissions per request before the
	// call fails with a timeout error.
	defaultMaxRetries = 8
	// maxRetryBackoff caps the exponential retransmit backoff.
	maxRetryBackoff = 4 * time.Second
	// dedupCacheCap bounds the per-session response cache on datagram
	// transports. It must exceed the in-flight window by enough margin
	// that a response can still be re-sent for any request the client
	// could plausibly retransmit.
	dedupCacheCap = 256
	// defaultSendWindow is the client's pipelining window: how many
	// requests may be awaiting responses at once before Go blocks. It
	// matches the server's default InFlightPerSession so a full client
	// window can never wedge the server-side reorder buffer.
	defaultSendWindow = 16
	// fastRetransmitSkips is the selective-repeat dup-ack threshold: when
	// this many ordered responses with higher IDs have arrived while an
	// ordered request is still pending, its response datagram is presumed
	// lost (the server executes ordered requests in ID order, so their
	// responses leave in ID order) and the request is re-sent immediately
	// instead of waiting out the retry timer. On a loss-free in-order
	// link the count can never be reached, so a perfect link sees zero
	// retransmits.
	fastRetransmitSkips = 3
)

// dedupState is the server side of exactly-once execution over an
// at-least-once transport: the reader consults it before dispatching a
// request ID, and the writer records every response it sends, so a
// retransmitted request is answered from cache instead of re-executing
// against the scenario (which would fork the deterministic result
// stream).
type dedupState struct {
	mu       sync.Mutex
	inflight map[uint64]struct{}
	done     map[uint64]wire.Message
	order    []uint64 // done-cache FIFO eviction order
	maxID    uint64   // highest request ID ever claimed
	pruned   uint64   // ids <= pruned are client-confirmed delivered (v3 cum)
}

func newDedupState() *dedupState {
	return &dedupState{
		inflight: make(map[uint64]struct{}),
		done:     make(map[uint64]wire.Message),
	}
}

// claim admits a request ID. fresh means execute it; cached non-nil
// means re-send that response; neither means drop the duplicate (it is
// still executing, or it is older than the dedup horizon).
func (d *dedupState) claim(id uint64) (fresh bool, cached wire.Message) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if msg, ok := d.done[id]; ok {
		return false, msg
	}
	if _, ok := d.inflight[id]; ok {
		return false, nil
	}
	// The client's cumulative-progress report confirmed delivery of every
	// response at or below pruned, so a retransmit from down there is
	// stale by definition: drop it rather than re-execute.
	if id <= d.pruned {
		return false, nil
	}
	// An ID far enough below the highest seen that its cache entry may
	// already have been evicted must NOT execute: this is a stale
	// retransmit of a request whose eviction we can no longer
	// distinguish from novelty, and re-executing it would fork the
	// deterministic result stream. Drop it; the client's retry schedule
	// surfaces the failure as a timeout. (Client IDs are sequential, so
	// a live pipeline never trips this.)
	if d.maxID >= dedupCacheCap && id <= d.maxID-dedupCacheCap {
		return false, nil
	}
	if id > d.maxID {
		d.maxID = id
	}
	d.inflight[id] = struct{}{}
	return true, nil
}

// prune drops done-cache entries at or below the client's cumulative
// progress report: the client has confirmed delivery of every response
// through cum, so it will never re-ask for them. This keeps the ledger
// holding only the window's worth of answers a live pipeline can still
// retransmit into, instead of the last dedupCacheCap responses.
func (d *dedupState) prune(cum uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cum <= d.pruned {
		return
	}
	d.pruned = cum
	keep := d.order[:0]
	for _, id := range d.order {
		if id <= cum {
			delete(d.done, id)
		} else {
			keep = append(keep, id)
		}
	}
	d.order = keep
}

// complete records the response the writer is sending for id.
func (d *dedupState) complete(id uint64, msg wire.Message) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.inflight, id)
	if _, ok := d.done[id]; ok {
		return
	}
	d.done[id] = msg
	d.order = append(d.order, id)
	if len(d.order) > dedupCacheCap {
		evict := d.order[0]
		d.order = d.order[1:]
		delete(d.done, evict)
	}
}

// TransportStats counts the client-side cost of an unreliable
// transport: how many requests were retransmitted and how many gave up.
// Always zero on stream transports.
type TransportStats struct {
	// Retransmits is the number of request datagrams re-sent after a
	// retry timeout expired without a response.
	Retransmits uint64
	// Timeouts is the number of requests that failed after exhausting
	// every retransmission.
	Timeouts uint64
	// ProgressFrames is the number of streamed EXPERIMENT-PROGRESS
	// frames received (v3 sessions; zero on v2 and on clients that never
	// ran a streamed experiment). Unlike the other counters it is also
	// populated on stream transports.
	ProgressFrames uint64
}

// retrier is the client-side reliability layer for datagram sessions:
// every in-flight request's plaintext envelope is kept until its
// response arrives, and re-sealed + retransmitted on an exponential
// backoff schedule. Re-sealing (rather than caching the sealed bytes)
// is load-bearing: a byte-identical resend would be swallowed by the
// server's securelink replay protection before the request ID could be
// matched against the dedup cache.
type retrier struct {
	c        *Client
	rto      time.Duration
	maxTries int

	mu      sync.Mutex
	entries map[uint64]*retryEntry
	wake    chan struct{}
	stopped bool

	retransmits atomic.Uint64
	timeouts    atomic.Uint64
}

type retryEntry struct {
	env     []byte // plaintext envelope (v2: id||msg, v3: id||flags||cum||msg)
	tries   int
	next    time.Time
	ordered bool // scenario-ordered request: responses arrive in ID order
	skips   int  // ordered responses with higher IDs seen while pending
}

func newRetrier(c *Client, rto time.Duration, maxTries int) *retrier {
	if rto <= 0 {
		rto = defaultRetryTimeout
	}
	if maxTries <= 0 {
		maxTries = defaultMaxRetries
	}
	return &retrier{
		c:        c,
		rto:      rto,
		maxTries: maxTries,
		entries:  make(map[uint64]*retryEntry),
		wake:     make(chan struct{}, 1),
	}
}

// track registers an in-flight request for retransmission. ordered
// marks requests the server sequences (EXCHANGE/BATCH/ATTACK/BYE),
// which makes them eligible for skip-count fast retransmission.
func (r *retrier) track(id uint64, env []byte, ordered bool) {
	r.mu.Lock()
	if !r.stopped {
		r.entries[id] = &retryEntry{env: env, next: time.Now().Add(r.rto), ordered: ordered}
	}
	r.mu.Unlock()
	r.poke()
}

// ack drops a request whose response arrived.
func (r *retrier) ack(id uint64) {
	r.mu.Lock()
	delete(r.entries, id)
	r.mu.Unlock()
}

// touch resets a request's retry schedule: a streamed partial response
// proved the server holds the request and is executing it, so the full
// timer (and try budget) starts over from now.
func (r *retrier) touch(id uint64) {
	r.mu.Lock()
	if e, ok := r.entries[id]; ok {
		e.tries = 0
		e.next = time.Now().Add(r.rto)
	}
	r.mu.Unlock()
}

// observe records the arrival of a final response to an ordered request:
// every ordered request still pending with a smaller ID has provably had
// its response sent (ordered execution is in ID order), so its response
// datagram is in flight or lost. After fastRetransmitSkips such signals
// the request is re-sent immediately — selective repeat of exactly the
// lost ID, at round-trip rather than retry-timer latency.
func (r *retrier) observe(respID uint64) {
	var resend [][]byte
	r.mu.Lock()
	if !r.stopped {
		for id, e := range r.entries {
			if !e.ordered || id >= respID {
				continue
			}
			e.skips++
			if e.skips >= fastRetransmitSkips {
				e.skips = 0
				e.next = time.Now().Add(r.backoff(e.tries))
				resend = append(resend, e.env)
			}
		}
	}
	r.mu.Unlock()
	for _, env := range resend {
		r.retransmits.Add(1)
		r.c.resendEnvelope(env)
	}
}

// stop ends the retry loop; tracked entries are abandoned (their calls
// are failed by whoever is tearing the client down).
func (r *retrier) stop() {
	r.mu.Lock()
	r.stopped = true
	r.entries = map[uint64]*retryEntry{}
	r.mu.Unlock()
	r.poke()
}

func (r *retrier) poke() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// backoff returns the delay before try n's successor.
func (r *retrier) backoff(tries int) time.Duration {
	d := r.rto << uint(tries)
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	return d
}

// run is the retransmit loop: wake at the earliest deadline, re-send
// everything due, expire anything out of tries.
func (r *retrier) run() {
	for {
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		var earliest time.Time
		for _, e := range r.entries {
			if earliest.IsZero() || e.next.Before(earliest) {
				earliest = e.next
			}
		}
		r.mu.Unlock()

		if earliest.IsZero() {
			// Nothing in flight: sleep until poked.
			<-r.wake
			continue
		}
		if d := time.Until(earliest); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-r.wake:
				timer.Stop()
				continue
			case <-timer.C:
			}
		}

		now := time.Now()
		var resend [][]byte
		var expired []uint64
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		for id, e := range r.entries {
			if e.next.After(now) {
				continue
			}
			e.tries++
			if e.tries > r.maxTries {
				expired = append(expired, id)
				delete(r.entries, id)
				continue
			}
			e.next = now.Add(r.backoff(e.tries))
			resend = append(resend, e.env)
		}
		r.mu.Unlock()

		for _, env := range resend {
			r.retransmits.Add(1)
			r.c.resendEnvelope(env)
		}
		for _, id := range expired {
			r.timeouts.Add(1)
			r.c.expireCall(id)
		}
	}
}
