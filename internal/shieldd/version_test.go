package shieldd_test

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"heartshield/internal/faultnet"
	"heartshield/internal/shieldd"
	"heartshield/internal/wire"
)

// TestVersionInteropMatrix pins version negotiation across every client
// protocol cap {1,2,3,4} against every server cap {1,2,3,4}, over both
// transports. Every cell must end in a completed session at
// min(client, server) or a clean typed error — never a hang. This is
// the rollback safety net for the v4 handshake: old peers on either
// side keep working.
func TestVersionInteropMatrix(t *testing.T) {
	want := localPair(7)

	t.Run("stream", func(t *testing.T) {
		for sv := uint8(1); sv <= wire.Version; sv++ {
			srv := newServer(t, shieldd.ServerConfig{MaxProtocol: sv})
			for cv := uint8(1); cv <= wire.Version; cv++ {
				t.Run(fmt.Sprintf("c%d_s%d", cv, sv), func(t *testing.T) {
					c := dialCell(t, func() (*shieldd.Client, error) {
						return srv.Pipe(shieldd.SessionOptions{Seed: 7, Protocol: cv})
					})
					defer c.Close()
					if got, wantV := c.Version(), min(cv, sv); got != wantV {
						t.Errorf("negotiated v%d, want v%d", got, wantV)
					}
					if got := clientPair(t, c); got != want {
						t.Errorf("session results %+v != in-process %+v", got, want)
					}
				})
			}
		}
	})

	t.Run("datagram", func(t *testing.T) {
		for sv := uint8(1); sv <= wire.Version; sv++ {
			nw := faultnet.New(40+int64(sv), faultnet.Impairment{})
			defer nw.Close()
			startPacketServer(t, nw, "server", shieldd.ServerConfig{MaxProtocol: sv})
			for cv := uint8(1); cv <= wire.Version; cv++ {
				t.Run(fmt.Sprintf("c%d_s%d", cv, sv), func(t *testing.T) {
					pc, err := nw.Listen(fmt.Sprintf("mx-%d-%d", cv, sv))
					if err != nil {
						t.Fatal(err)
					}
					c := dialCellErr(t, func() (*shieldd.Client, error) {
						return shieldd.NewPacketClient(pc, faultnet.Addr("server"), testSecret,
							shieldd.SessionOptions{Seed: 7, Protocol: cv,
								RetryTimeout: 20 * time.Millisecond, MaxRetries: 5})
					})
					if cv < 2 || sv < 2 {
						// Datagram transport is v2+: a v1 cap on either side
						// must refuse cleanly (client-side for cv=1, a
						// plaintext server error for sv=1).
						if c.err == nil {
							c.c.Close()
							t.Fatalf("v%d×v%d datagram session completed, want refusal", cv, sv)
						}
						pc.Close()
						return
					}
					if c.err != nil {
						t.Fatalf("datagram dial: %v", c.err)
					}
					defer c.c.Close()
					if got, wantV := c.c.Version(), min(cv, sv); got != wantV {
						t.Errorf("negotiated v%d, want v%d", got, wantV)
					}
					if got := clientPair(t, c.c); got != want {
						t.Errorf("session results %+v != in-process %+v", got, want)
					}
				})
			}
		}
	})
}

// dialCell runs dial under a watchdog: a matrix cell that hangs fails
// fast instead of timing out the whole package.
func dialCell(t *testing.T, dial func() (*shieldd.Client, error)) *shieldd.Client {
	t.Helper()
	r := dialCellErr(t, dial)
	if r.err != nil {
		t.Fatalf("dial: %v", r.err)
	}
	return r.c
}

type dialResult struct {
	c   *shieldd.Client
	err error
}

func dialCellErr(t *testing.T, dial func() (*shieldd.Client, error)) dialResult {
	t.Helper()
	done := make(chan dialResult, 1)
	go func() {
		c, err := dial()
		done <- dialResult{c, err}
	}()
	select {
	case r := <-done:
		return r
	case <-time.After(15 * time.Second):
		t.Fatal("handshake hung")
		return dialResult{}
	}
}

// TestMinProtocolRefusesOldServer: a client pinned to MinProtocol=4
// must refuse to complete a session against a server capped below v4,
// with the typed downgrade error — the deployment switch that makes
// forward secrecy mandatory.
func TestMinProtocolRefusesOldServer(t *testing.T) {
	srv := newServer(t, shieldd.ServerConfig{MaxProtocol: 3})
	_, err := srv.Pipe(shieldd.SessionOptions{Seed: 1, MinProtocol: 4})
	if !errors.Is(err, shieldd.ErrDowngrade) {
		t.Fatalf("pinned client against v3 server: err = %v, want ErrDowngrade", err)
	}
	// The same pin against a current server completes at v4.
	full := newServer(t, shieldd.ServerConfig{})
	c, err := full.Pipe(shieldd.SessionOptions{Seed: 1, MinProtocol: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Version() != 4 {
		t.Fatalf("negotiated v%d, want v4", c.Version())
	}
	if c.Resumed() {
		t.Fatal("fresh session reports itself resumed")
	}
}

// TestV4ResumptionStream: after the idle reaper kills a stream session,
// AutoReconnect re-handshakes by redeeming the resumption ticket — the
// new session runs on resumed forward-secret keys (Resumed, one resume
// counted) and still restarts the deterministic stream at the seed.
func TestV4ResumptionStream(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer l.Close()
	srv := newServer(t, shieldd.ServerConfig{IdleTimeout: 300 * time.Millisecond})
	go srv.Serve(l)

	c, err := shieldd.Dial(l.Addr().String(), testSecret, shieldd.SessionOptions{Seed: 41, AutoReconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Resumed() {
		t.Fatal("initial handshake reports itself resumed")
	}
	first, err := c.Exchange(0, wire.CmdInterrogate)
	if err != nil {
		t.Fatal(err)
	}
	firstSession := c.SessionID()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().ReapedSessions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	again, err := c.Exchange(0, wire.CmdInterrogate)
	if err != nil {
		t.Fatalf("exchange after reap: %v", err)
	}
	if !c.Resumed() {
		t.Error("reconnected session did not resume from its ticket")
	}
	if n := c.Resumes(); n != 1 {
		t.Errorf("resume count = %d, want 1", n)
	}
	if c.SessionID() == firstSession {
		t.Error("session ID unchanged across resumption")
	}
	if again.EavesBER != first.EavesBER || again.CancellationDB != first.CancellationDB {
		t.Errorf("resumed stream first exchange %+v != original %+v", again, first)
	}

	// Each resumption mints a fresh single-use ticket: a second reap
	// cycle must resume again, not fall back to the full AKE.
	reaped := srv.Metrics().ReapedSessions
	deadline = time.Now().Add(5 * time.Second)
	for srv.Metrics().ReapedSessions == reaped {
		if time.Now().After(deadline) {
			t.Fatal("resumed session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Exchange(0, wire.CmdInterrogate); err != nil {
		t.Fatalf("exchange after second reap: %v", err)
	}
	if n := c.Resumes(); n != 2 {
		t.Errorf("resume count after second cycle = %d, want 2", n)
	}
}

// TestV4ResumptionDatagramGate: a datagram reconnect from the ticket's
// issuing address skips the stateless-cookie round entirely — the gate
// admits the ticket directly, so resumption is one round trip and the
// server's CookiesSent counter stays flat.
func TestV4ResumptionDatagramGate(t *testing.T) {
	nw := faultnet.New(44, faultnet.Impairment{})
	defer nw.Close()
	srv := startPacketServer(t, nw, "server", shieldd.ServerConfig{
		MaxSessions: 4, IdleTimeout: 300 * time.Millisecond,
	})

	ep, err := nw.Listen("res-client")
	if err != nil {
		t.Fatal(err)
	}
	c, err := shieldd.NewPacketClient(ep, faultnet.Addr("server"), testSecret, shieldd.SessionOptions{
		Seed:          9,
		AutoReconnect: true,
		RetryTimeout:  10 * time.Millisecond,
		MaxRetries:    4,
		// Redial from the SAME faultnet address: the resumption ticket is
		// address-bound at the gate, and only the issuing address gets the
		// one-round-trip path. Closing the old endpoint first frees the
		// name (the dead session's transport is already unusable).
		RedialPacket: func() (net.PacketConn, net.Addr, error) {
			ep.Close()
			ep2, err := nw.Listen("res-client")
			if err != nil {
				return nil, nil, err
			}
			return ep2, faultnet.Addr("server"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first := clientPair(t, c)

	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().ReapedSessions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle datagram session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The death is only observable via retransmit exhaustion: the first
	// post-reap request fails and poisons the session, the next one
	// reconnects.
	if _, err := c.Exchange(0, wire.CmdInterrogate); err == nil {
		t.Fatal("exchange on a reaped datagram session succeeded")
	}
	cookiesBefore := srv.Metrics().CookiesSent

	again := clientPair(t, c)
	if again != first {
		t.Errorf("resumed stream pair %+v != original %+v", again, first)
	}
	if !c.Resumed() {
		t.Error("datagram reconnect did not resume from its ticket")
	}
	if n := c.Resumes(); n != 1 {
		t.Errorf("resume count = %d, want 1", n)
	}
	if got := srv.Metrics().CookiesSent; got != cookiesBefore {
		t.Errorf("resumption cost %d cookie round trips, want 0 (ticket admits at the gate)", got-cookiesBefore)
	}
}

// TestClientGoroutineHygiene is the timer/goroutine teardown wall:
// repeated session open/use/close cycles — including a datagram Close
// against a dead server and a failed AutoReconnect — must not leave
// retransmit timers, read loops, or retrier goroutines behind.
func TestClientGoroutineHygiene(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer l.Close()
	srv := newServer(t, shieldd.ServerConfig{IdleTimeout: 200 * time.Millisecond})
	go srv.Serve(l)
	nw := faultnet.New(46, faultnet.Impairment{})
	defer nw.Close()
	startPacketServer(t, nw, "gserver", shieldd.ServerConfig{IdleTimeout: 200 * time.Millisecond})

	cycle := func(i int) {
		// Stream cycle.
		sc, err := shieldd.Dial(l.Addr().String(), testSecret, shieldd.SessionOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Exchange(0, wire.CmdInterrogate); err != nil {
			t.Fatal(err)
		}
		if err := sc.Close(); err != nil {
			t.Fatal(err)
		}
		// Datagram cycle.
		dc := dialPacket(t, nw, fmt.Sprintf("g%d", i), "gserver", shieldd.SessionOptions{
			Seed: 1, RetryTimeout: 10 * time.Millisecond, MaxRetries: 3,
		})
		if err := dc.Ping(); err != nil {
			t.Fatal(err)
		}
		if err := dc.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// One warmup pass so lazy singletons (pools, DNS, scenario shapes)
	// are allocated before the baseline is taken.
	cycle(0)
	time.Sleep(50 * time.Millisecond)
	runtime.GC()
	baseline := runtime.NumGoroutine()

	for i := 1; i <= 4; i++ {
		cycle(i)
	}

	// Failed AutoReconnect: the reaper kills the session, the redial
	// hook refuses, and every retry path must still tear down cleanly.
	fc := dialPacket(t, nw, "gfail", "gserver", shieldd.SessionOptions{
		Seed: 1, AutoReconnect: true,
		RetryTimeout: 10 * time.Millisecond, MaxRetries: 3,
		RedialPacket: func() (net.PacketConn, net.Addr, error) {
			return nil, nil, errors.New("redial refused by test")
		},
	})
	if err := fc.Ping(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := fc.Exchange(0, wire.CmdInterrogate); err != nil {
			break // session died and the failed reconnect surfaced
		}
		if time.Now().After(deadline) {
			t.Fatal("datagram session never reaped under idle timeout")
		}
		time.Sleep(250 * time.Millisecond)
	}
	if _, err := fc.Exchange(0, wire.CmdInterrogate); err == nil {
		t.Fatal("exchange succeeded after redial hook refused")
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}

	// Close against a dead server: BYE retransmits must give up on
	// their bounded budget and the retrier must stop.
	dead := dialPacket(t, nw, "gdead", "gserver", shieldd.SessionOptions{
		Seed: 1, RetryTimeout: 10 * time.Millisecond, MaxRetries: 3,
	})
	if err := dead.Ping(); err != nil {
		t.Fatal(err)
	}
	nw.SetFlowImpairment("gdead", "gserver", faultnet.Impairment{Drop: 1.0})
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything torn down: the goroutine count must return to the
	// baseline (plus slack for server-side reap/accept churn in flight).
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
