package shieldd_test

import (
	"net"
	"testing"
	"time"

	"heartshield/internal/securelink"
	"heartshield/internal/shieldd"
	"heartshield/internal/wire"
)

// A client forced to protocol v1 (the wire format old clients speak:
// no request-ID envelope, strict request/response) must complete a full
// session against a v2 server, and the negotiated version must come back
// as 1 in the HELLO-ACK.
func TestV1ClientAgainstV2Server(t *testing.T) {
	srv := newServer(t, shieldd.ServerConfig{})

	c2, err := srv.Pipe(shieldd.SessionOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Version(); got != wire.Version {
		t.Fatalf("default client negotiated v%d, want v%d", got, wire.Version)
	}
	want := clientPair(t, c2)
	c2.Close()

	c1, err := srv.Pipe(shieldd.SessionOptions{Seed: 11, Protocol: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if got := c1.Version(); got != 1 {
		t.Fatalf("forced-v1 client negotiated v%d, want 1", got)
	}
	// The full request vocabulary works over v1, including the kinds new
	// in this protocol revision (batching and metrics are orthogonal to
	// pipelining; only the envelope is v2-specific).
	got := clientPair(t, c1)
	if got != want {
		t.Errorf("v1 session results %+v != v2 session results %+v", got, want)
	}
	if err := c1.Ping(); err != nil {
		t.Errorf("ping over v1: %v", err)
	}
	if _, err := c1.BatchExchange([]wire.ExchangeItem{{IMD: 0, Cmd: wire.CmdInterrogate}}); err != nil {
		t.Errorf("batch over v1: %v", err)
	}
	m, err := c1.Metrics()
	if err != nil {
		t.Fatalf("metrics over v1: %v", err)
	}
	if m.Protocol != 1 {
		t.Errorf("metrics report protocol %d, want 1", m.Protocol)
	}
	if m.Exchanges != 2 || m.Batches != 1 || m.BatchedExchanges != 1 || m.Pings != 1 {
		t.Errorf("v1 session counters %+v implausible", m)
	}
}

// A batch must produce exactly the result stream of the same items sent
// as individual EXCHANGE frames at the same seed — batching is a framing
// optimization, never a physics change.
func TestBatchMatchesSequentialExchanges(t *testing.T) {
	srv := newServer(t, shieldd.ServerConfig{})
	items := []wire.ExchangeItem{
		{IMD: 0, Cmd: wire.CmdInterrogate},
		{IMD: 0, Cmd: wire.CmdSetTherapy},
		{IMD: 0, Cmd: wire.CmdInterrogate},
	}

	cSeq, err := srv.Pipe(shieldd.SessionOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var want []wire.ExchangeResp
	for _, it := range items {
		r, err := cSeq.Exchange(int(it.IMD), it.Cmd)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, *r)
	}
	cSeq.Close()

	cBatch, err := srv.Pipe(shieldd.SessionOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer cBatch.Close()
	got, err := cBatch.BatchExchange(items)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].EavesBER != want[i].EavesBER || got[i].CancellationDB != want[i].CancellationDB ||
			string(got[i].Response) != string(want[i].Response) {
			t.Errorf("item %d: batch %+v != sequential %+v", i, got[i], want[i])
		}
	}

	// A batch with any bad index is refused before touching the scenario:
	// the deterministic stream continues exactly where it left off. The
	// 4th exchange after the rejected batch must equal the 4th exchange
	// of a session that never saw the bad batch.
	if _, err := cBatch.BatchExchange([]wire.ExchangeItem{{IMD: 0}, {IMD: 9}}); err == nil {
		t.Fatal("batch with out-of-range IMD accepted")
	}
	after, err := cBatch.Exchange(0, wire.CmdInterrogate)
	if err != nil {
		t.Fatal(err)
	}
	cSeq2, err := srv.Pipe(shieldd.SessionOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer cSeq2.Close()
	for _, it := range items {
		if _, err := cSeq2.Exchange(int(it.IMD), it.Cmd); err != nil {
			t.Fatal(err)
		}
	}
	clean, err := cSeq2.Exchange(0, wire.CmdInterrogate)
	if err != nil {
		t.Fatal(err)
	}
	if after.EavesBER != clean.EavesBER || after.CancellationDB != clean.CancellationDB {
		t.Errorf("rejected batch perturbed the stream: %+v != %+v", after, clean)
	}

	if _, err := cBatch.BatchExchange(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// Pipelined requests complete out of order: a PING submitted behind a
// long BATCH-EXCHANGE overtakes it (the server answers keepalives from
// the reader fast path, never behind the scenario executor).
func TestPipelinedOutOfOrderCompletion(t *testing.T) {
	srv := newServer(t, shieldd.ServerConfig{})
	c, err := srv.Pipe(shieldd.SessionOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// ~64 exchanges ≈ 150 ms of scenario work in the executor queue.
	items := make([]wire.ExchangeItem, 64)
	for i := range items {
		items[i] = wire.ExchangeItem{IMD: 0, Cmd: wire.CmdInterrogate}
	}
	batch := c.Go(&wire.BatchReq{Items: items})
	ping := c.Go(&wire.Ping{Token: 77})

	if _, err := ping.Wait(); err != nil {
		t.Fatalf("ping behind batch: %v", err)
	}
	select {
	case <-batch.Done:
		t.Error("batch finished before the ping — requests were not pipelined out of order")
	default:
	}
	resp, err := batch.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if br := resp.(*wire.BatchResp); len(br.Results) != len(items) {
		t.Fatalf("batch returned %d results", len(br.Results))
	}

	// The pipelining depth reached at least 2 (batch + ping in flight).
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.InFlightHWM < 2 {
		t.Errorf("in-flight high-water mark %d, want >= 2", m.InFlightHWM)
	}
}

// Pipelined exchanges must preserve the deterministic result stream:
// two exchanges submitted back-to-back without waiting produce exactly
// the serial in-process results (the executor runs them in arrival
// order even though the transport no longer enforces lockstep).
func TestPipelinedExchangesStayDeterministic(t *testing.T) {
	srv := newServer(t, shieldd.ServerConfig{})
	want := localPair(13)
	c, err := srv.Pipe(shieldd.SessionOptions{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	callA := c.Go(&wire.ExchangeReq{IMD: 0, Cmd: wire.CmdInterrogate})
	callB := c.Go(&wire.ExchangeReq{IMD: 0, Cmd: wire.CmdSetTherapy})
	ra, err := callA.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := callB.Wait()
	if err != nil {
		t.Fatal(err)
	}
	a, b := ra.(*wire.ExchangeResp), rb.(*wire.ExchangeResp)
	got := exchangePair{
		BER0: a.EavesBER, Cancel0: a.CancellationDB, Payload0: string(a.Response),
		BER1: b.EavesBER, Cancel1: b.CancellationDB,
	}
	if got != want {
		t.Errorf("pipelined %+v != serial in-process %+v", got, want)
	}
}

// The idle reaper must close a quiet session and return its scenario to
// the pool, while PING keepalives hold a session open. The keepalive
// interval sits at a quarter of the idle window: under the race detector
// on a loaded single-core machine a sleep can overshoot by tens of
// milliseconds, and a half-window interval made the reaper win those
// races spuriously.
func TestIdleReaperReturnsScenarioToPool(t *testing.T) {
	srv := newServer(t, shieldd.ServerConfig{IdleTimeout: 400 * time.Millisecond, PoolPerShape: 4})
	c, err := srv.Pipe(shieldd.SessionOptions{Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exchange(0, wire.CmdInterrogate); err != nil {
		t.Fatal(err)
	}

	// Keepalives across several idle windows: the session must survive.
	for i := 0; i < 6; i++ {
		time.Sleep(100 * time.Millisecond)
		if err := c.Ping(); err != nil {
			t.Fatalf("keepalive %d failed: %v", i, err)
		}
	}

	// Go quiet: the reaper must close the session and pool the scenario.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Status()
		m := srv.Metrics()
		if st.ActiveSessions == 0 && st.PooledScenarios >= 1 && m.ReapedSessions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not reaped: %+v, metrics %+v", st, m)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The client's next request must fail (no auto-reconnect configured).
	if _, err := c.Exchange(0, wire.CmdInterrogate); err == nil {
		t.Fatal("exchange succeeded on a reaped session without AutoReconnect")
	}
}

// The idle reaper must cover v1 sessions too: a silent v1 client cannot
// pin a session slot and a pooled scenario forever.
func TestIdleReaperCoversV1Sessions(t *testing.T) {
	// The timeout must comfortably exceed the in-transit window of a
	// request frame under -race on a loaded machine, or the reaper can
	// kill the session between the handshake and the first exchange.
	srv := newServer(t, shieldd.ServerConfig{IdleTimeout: 300 * time.Millisecond})
	c, err := srv.Pipe(shieldd.SessionOptions{Seed: 32, Protocol: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exchange(0, wire.CmdInterrogate); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().ReapedSessions == 0 || srv.Status().ActiveSessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle v1 session never reaped: %+v", srv.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A dialed client with AutoReconnect re-handshakes transparently after
// the idle reaper closes its connection; the fresh session restarts the
// deterministic stream at the session seed.
func TestAutoReconnectAfterIdleReap(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer l.Close()
	// As above: a reap window under ~300ms races the first exchange's
	// frame transit under -race on a loaded machine (failed 1-2/5 runs
	// at 60ms with a concurrent experiment suite, base commit included).
	srv := newServer(t, shieldd.ServerConfig{IdleTimeout: 300 * time.Millisecond})
	go srv.Serve(l)

	c, err := shieldd.Dial(l.Addr().String(), testSecret, shieldd.SessionOptions{Seed: 31, AutoReconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first, err := c.Exchange(0, wire.CmdInterrogate)
	if err != nil {
		t.Fatal(err)
	}
	firstSession := c.SessionID()

	// Wait for the reaper to kill the idle connection.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().ReapedSessions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The next request must transparently re-dial, re-handshake with
	// fresh nonces, and restart the seed-31 stream from the beginning.
	again, err := c.Exchange(0, wire.CmdInterrogate)
	if err != nil {
		t.Fatalf("exchange after reap: %v", err)
	}
	if c.Reconnects() != 1 {
		t.Errorf("reconnect count = %d, want 1", c.Reconnects())
	}
	if c.SessionID() == firstSession {
		t.Error("session ID unchanged across reconnect — handshake not fresh")
	}
	if again.EavesBER != first.EavesBER || again.CancellationDB != first.CancellationDB {
		t.Errorf("restarted stream first exchange %+v != original first exchange %+v", again, first)
	}
}

// STATUS-METRICS must count the session's own requests and expose link
// traffic from securelink.
func TestSessionMetricsCounters(t *testing.T) {
	srv := newServer(t, shieldd.ServerConfig{})
	c, err := srv.Pipe(shieldd.SessionOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exchange(0, wire.CmdInterrogate); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BatchExchange([]wire.ExchangeItem{
		{IMD: 0, Cmd: wire.CmdInterrogate}, {IMD: 0, Cmd: wire.CmdInterrogate},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attack(wire.CmdInterrogate, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exchange(9, wire.CmdInterrogate); err == nil {
		t.Fatal("out-of-range exchange accepted")
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Exchanges != 1 || m.Batches != 1 || m.BatchedExchanges != 2 ||
		m.Attacks != 1 || m.Pings != 1 || m.Errors != 1 {
		t.Errorf("session counters %+v", m)
	}
	if m.BytesSealed == 0 || m.BytesOpened == 0 {
		t.Errorf("link byte counters empty: sealed %d opened %d", m.BytesSealed, m.BytesOpened)
	}
	if m.Protocol != wire.Version {
		t.Errorf("metrics protocol %d, want %d", m.Protocol, wire.Version)
	}
	if m.ServerTotalSessions == 0 || m.ServerActiveSessions == 0 {
		t.Errorf("server gauges empty: %+v", m)
	}
}

// reportPerExchange turns the link-stat delta of a benchmark run into
// deterministic per-exchange protocol-cost metrics: sealed+opened wire
// frames and bytes per exchange. Unlike ns/op these are exact (no
// scheduler noise), so they are what the CI bench gate watches to prove
// batching amortizes framing and sealing.
func reportPerExchange(b *testing.B, before, after securelink.Stats, exchanges int) {
	b.Helper()
	frames := float64(after.MsgsSealed - before.MsgsSealed + after.MsgsOpened - before.MsgsOpened)
	bytes := float64(after.BytesSealed - before.BytesSealed + after.BytesOpened - before.BytesOpened)
	b.ReportMetric(frames/float64(exchanges), "frames/xchg")
	b.ReportMetric(bytes/float64(exchanges), "wireB/xchg")
}

// BenchmarkBatchedExchange measures 16 protected exchanges delivered as
// one BATCH-EXCHANGE frame (one sealed round trip); compare with
// BenchmarkSequentialExchanges, which performs the same 16 exchanges as
// individual round trips. The per-exchange simulation physics (~ms)
// dominates wall clock on an in-process pipe, so the amortization shows
// up primarily in the exact frames/xchg metric (0.125 vs 2) and in
// wire bytes per exchange; over a real network each saved frame is also
// a saved round trip.
func BenchmarkBatchedExchange(b *testing.B) {
	srv, err := shieldd.NewServer(shieldd.ServerConfig{Secret: testSecret})
	if err != nil {
		b.Fatal(err)
	}
	c, err := srv.Pipe(shieldd.SessionOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	items := make([]wire.ExchangeItem, 16)
	for i := range items {
		items[i] = wire.ExchangeItem{IMD: 0, Cmd: wire.CmdInterrogate}
	}
	before := c.LinkStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BatchExchange(items); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPerExchange(b, before, c.LinkStats(), 16*b.N)
}

// BenchmarkSequentialExchanges is the unbatched baseline: the same 16
// exchanges as BenchmarkBatchedExchange, one sealed round trip each.
func BenchmarkSequentialExchanges(b *testing.B) {
	srv, err := shieldd.NewServer(shieldd.ServerConfig{Secret: testSecret})
	if err != nil {
		b.Fatal(err)
	}
	c, err := srv.Pipe(shieldd.SessionOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	before := c.LinkStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			if _, err := c.Exchange(0, wire.CmdInterrogate); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	reportPerExchange(b, before, c.LinkStats(), 16*b.N)
}
