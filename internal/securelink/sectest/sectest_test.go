package sectest

import (
	"errors"
	"net"
	"testing"
	"time"

	"heartshield/internal/securelink"
	"heartshield/internal/shieldd"
	"heartshield/internal/wire"
)

// The suite's provisioned master secret — by assumption compromised:
// every attack below is run WITH knowledge of it.
var master = []byte("sectest-master-secret")

func newServer(t *testing.T, cfg shieldd.ServerConfig) *shieldd.Server {
	t.Helper()
	if cfg.Secret == nil {
		cfg.Secret = master
	}
	srv, err := shieldd.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// recordSession runs one legitimate stream session (handshake, one
// exchange, BYE) at the given protocol cap and returns its transcript.
func recordSession(t *testing.T, protocol uint8) *Recording {
	t.Helper()
	srv := newServer(t, shieldd.ServerConfig{})
	cEnd, sEnd := net.Pipe()
	go srv.ServeConn(sEnd)
	tap := NewTapConn(cEnd)
	c, err := shieldd.NewClient(tap, master, shieldd.SessionOptions{Seed: 5, Protocol: protocol})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exchange(0, wire.CmdInterrogate); err != nil {
		t.Fatal(err)
	}
	c.Close()
	rec, err := tap.Recording()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.ClientFrames) < 2 || len(rec.ServerFrames) < 2 {
		t.Fatalf("transcript too short: %d client / %d server frames",
			len(rec.ClientFrames), len(rec.ServerFrames))
	}
	return rec
}

// dialRaw opens a fresh raw connection served by srv.
func dialRaw(t *testing.T, srv *shieldd.Server) net.Conn {
	t.Helper()
	cEnd, sEnd := net.Pipe()
	go srv.ServeConn(sEnd)
	t.Cleanup(func() { cEnd.Close() })
	return cEnd
}

// mitm stands up a frame-rewriting relay between a fresh client
// connection and srv, and returns the client end.
func mitm(t *testing.T, srv *shieldd.Server, c2s, s2c Rewrite) net.Conn {
	t.Helper()
	cliEnd, relayCli := net.Pipe()
	relaySrv, srvEnd := net.Pipe()
	go srv.ServeConn(srvEnd)
	RelayFrames(relayCli, relaySrv, c2s, s2c)
	t.Cleanup(func() { cliEnd.Close() })
	return cliEnd
}

// TestSecuritySuite is the adversarial wall the v4 handshake must hold
// against, and the demonstration that the pre-v4 handshake does not —
// the forward-secrecy leg's legacy case must keep SUCCEEDING as an
// attack, or the suite has lost its teeth.
func TestSecuritySuite(t *testing.T) {
	t.Run("forward-secrecy", testForwardSecrecy)
	t.Run("key-compromise", testKeyCompromise)
	t.Run("replay", testReplay)
	t.Run("downgrade", testDowngrade)
}

// Forward secrecy: record a session, THEN leak the master secret. The
// legacy handshake's traffic falls; the v4 AKE's does not.
func testForwardSecrecy(t *testing.T) {
	cases := []struct {
		name      string
		protocol  uint8 // client protocol cap; 0 = current (v4)
		recovered bool  // the offline attack must succeed
	}{
		// The teeth: the attack must demonstrably WORK against the old
		// SessionSecret-only derivation. If this case ever starts
		// failing, the attacker model broke, not the old handshake.
		{"v3 legacy session decrypts under leaked master", 3, true},
		{"v4 AKE session stays sealed under leaked master", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := recordSession(t, tc.protocol)
			plain, err := RecoverSession(master, rec)
			if tc.recovered {
				if err != nil {
					t.Fatalf("offline attack on a legacy session failed (%v) — the suite lost its teeth", err)
				}
				if len(plain) < 2 {
					t.Fatalf("attack recovered only %d frames from a legacy session", len(plain))
				}
				return
			}
			if !errors.Is(err, ErrNotRecovered) {
				t.Fatalf("offline attack on a v4 session: got (%d frames, %v), want ErrNotRecovered",
					len(plain), err)
			}
		})
	}
}

// Key compromise: even holding the master secret, an attacker missing
// the per-session secrets cannot impersonate its way into a session —
// and a stolen ticket without its resumption secret is both useless and
// burned on first use.
func testKeyCompromise(t *testing.T) {
	srv := newServer(t, shieldd.ServerConfig{})

	// A legitimate handshake first, to put a real ticket in play.
	legit, err := RunV4Handshake(dialRaw(t, srv), master, nil, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(legit.Ticket) == 0 || len(legit.RMS) == 0 {
		t.Fatal("v4 handshake returned no resumption state")
	}

	t.Run("stolen ticket without its secret", func(t *testing.T) {
		// The thief has the master AND the ticket bytes, but not the
		// resumption secret the ticket seals. The server resumes, the
		// thief cannot follow the schedule, and the sealed ack is the
		// wall it hits.
		if hs, err := RunV4Handshake(dialRaw(t, srv), master, legit.Ticket, nil, 7); err == nil {
			t.Fatalf("thief completed a resumed handshake (resumed=%v)", hs.Resumed)
		}
		// Single use means single attempt: the theft burned the ticket,
		// so even the rightful owner cannot resume with it anymore.
		hs, err := RunV4Handshake(dialRaw(t, srv), master, legit.Ticket, legit.RMS, 7)
		if err != nil {
			t.Fatalf("full-AKE fallback after a burned ticket failed: %v", err)
		}
		if hs.Resumed {
			t.Fatal("server resumed from a ticket an attacker already spent")
		}
	})

	t.Run("wrong master cannot complete the AKE", func(t *testing.T) {
		wrong := append([]byte(nil), master...)
		wrong[0] ^= 0x01
		if _, err := RunV4Handshake(dialRaw(t, srv), wrong, nil, nil, 7); err == nil {
			t.Fatal("handshake completed without the provisioned master secret")
		}
	})
}

// Replay: neither a whole recorded v4 session nor a spent ticket buys
// the attacker a second run.
func testReplay(t *testing.T) {
	t.Run("recorded v4 session", func(t *testing.T) {
		srv := newServer(t, shieldd.ServerConfig{})
		rec := recordSession(t, 0)

		conn := dialRaw(t, srv)
		if err := wire.WriteFrame(conn, rec.ClientFrames[0]); err != nil {
			t.Fatal(err)
		}
		// The server answers a fresh CHALLENGE2 and a sealed ack under
		// keys the replayer cannot derive (new server ephemeral).
		for i := 0; i < 2; i++ {
			if _, err := wire.ReadFrame(conn); err != nil {
				t.Fatalf("server frame %d: %v", i, err)
			}
		}
		exch := srv.Status().TotalExchanges
		for _, f := range rec.ClientFrames[1:] {
			if err := wire.WriteFrame(conn, f); err != nil {
				break // server hung up — acceptable at any point
			}
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := wire.ReadFrame(conn); err == nil {
			t.Fatal("server answered a replayed sealed frame")
		}
		if got := srv.Status().TotalExchanges; got != exch {
			t.Fatalf("replayed session executed %d exchanges", got-exch)
		}
	})

	t.Run("ticket double redeem", func(t *testing.T) {
		srv := newServer(t, shieldd.ServerConfig{})
		first, err := RunV4Handshake(dialRaw(t, srv), master, nil, nil, 7)
		if err != nil {
			t.Fatal(err)
		}
		second, err := RunV4Handshake(dialRaw(t, srv), master, first.Ticket, first.RMS, 7)
		if err != nil {
			t.Fatalf("legitimate resumption failed: %v", err)
		}
		if !second.Resumed {
			t.Fatal("first ticket use did not resume")
		}
		// Same ticket again: the server must have consumed it. The
		// handshake may still complete — as a full AKE, never resumed.
		third, err := RunV4Handshake(dialRaw(t, srv), master, first.Ticket, first.RMS, 7)
		if err == nil && third.Resumed {
			t.Fatal("ticket redeemed twice")
		}
	})
}

// Downgrade: a MITM stripping the v4 handshake gets exactly the legacy
// rollback window and nothing else — a pinned client refuses with the
// typed error, and tampering inside the v4 exchange kills the handshake.
func testDowngrade(t *testing.T) {
	stripV4 := func(m wire.Message, f []byte) []byte {
		if h, ok := m.(*wire.Hello); ok && h.Version >= 4 {
			legacy := *h
			legacy.Version = 3
			legacy.KeyShare = nil
			legacy.Ticket = nil
			return legacy.Encode()
		}
		return f
	}

	t.Run("stripped HELLO, pinned client", func(t *testing.T) {
		srv := newServer(t, shieldd.ServerConfig{})
		conn := mitm(t, srv, stripV4, nil)
		_, err := shieldd.NewClient(conn, master, shieldd.SessionOptions{Seed: 7, MinProtocol: 4})
		if !errors.Is(err, shieldd.ErrDowngrade) {
			t.Fatalf("pinned client under downgrade MITM: err = %v, want ErrDowngrade", err)
		}
	})

	t.Run("stripped HELLO, unpinned client falls back", func(t *testing.T) {
		// Without a MinProtocol pin the session completes at v3 — the
		// documented rollback window that exists until every client sets
		// the pin. This case keeps the fallback honest: downgrade is a
		// policy choice, not an accident.
		srv := newServer(t, shieldd.ServerConfig{})
		conn := mitm(t, srv, stripV4, nil)
		c, err := shieldd.NewClient(conn, master, shieldd.SessionOptions{Seed: 7})
		if err != nil {
			t.Fatalf("unpinned client under downgrade MITM: %v", err)
		}
		defer c.Close()
		if c.Version() != 3 {
			t.Fatalf("negotiated v%d under a v3-stripping MITM, want v3", c.Version())
		}
	})

	t.Run("tampered server key share", func(t *testing.T) {
		srv := newServer(t, shieldd.ServerConfig{})
		evil, err := securelink.NewEphemeral()
		if err != nil {
			t.Fatal(err)
		}
		swapShare := func(m wire.Message, f []byte) []byte {
			if ch, ok := m.(*wire.Challenge2); ok && !ch.Resumed {
				forged := *ch
				forged.KeyShare = evil.Public()
				return forged.Encode()
			}
			return f
		}
		conn := mitm(t, srv, nil, swapShare)
		if _, err := shieldd.NewClient(conn, master, shieldd.SessionOptions{Seed: 7}); err == nil {
			t.Fatal("handshake completed over a substituted server key share")
		}
	})

	t.Run("old server, pinned client", func(t *testing.T) {
		srv := newServer(t, shieldd.ServerConfig{MaxProtocol: 3})
		_, err := srv.Pipe(shieldd.SessionOptions{Seed: 7, MinProtocol: 4})
		if !errors.Is(err, shieldd.ErrDowngrade) {
			t.Fatalf("pinned client against a v3-capped server: err = %v, want ErrDowngrade", err)
		}
	})
}
