// Package sectest is the adversarial harness behind the handshake
// security wall (`make seccheck`): a transcript recorder, an offline
// attacker that tries to recover session keys from a recording plus the
// long-term master secret, a hand-rolled v4 handshake the tests can
// drive with stolen or replayed credentials, and a frame-rewriting MITM
// relay for downgrade attacks.
//
// The attacker here is deliberately strong: it knows the protocol, the
// key schedule, and the provisioned master secret. What it never holds
// is an ephemeral private key or a resumption secret — exactly the
// material the v4 handshake puts between a recorded session and a
// later key compromise.
package sectest

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sync"

	"heartshield/internal/securelink"
	"heartshield/internal/wire"
)

// Recording is one session's transcript, split by direction, as transport
// frames in send order.
type Recording struct {
	ClientFrames [][]byte // frames the client wrote
	ServerFrames [][]byte // frames the server wrote
}

// TapConn wraps a stream transport and records both directions. Safe for
// the one-reader/any-writers discipline shieldd clients follow.
type TapConn struct {
	net.Conn
	mu   sync.Mutex
	sent bytes.Buffer
	rcvd bytes.Buffer
}

// NewTapConn wraps conn with a transcript recorder.
func NewTapConn(conn net.Conn) *TapConn { return &TapConn{Conn: conn} }

func (t *TapConn) Write(b []byte) (int, error) {
	t.mu.Lock()
	t.sent.Write(b)
	t.mu.Unlock()
	return t.Conn.Write(b)
}

func (t *TapConn) Read(b []byte) (int, error) {
	n, err := t.Conn.Read(b)
	if n > 0 {
		t.mu.Lock()
		t.rcvd.Write(b[:n])
		t.mu.Unlock()
	}
	return n, err
}

// Recording re-frames the captured byte streams into the transport
// frames they carried.
func (t *TapConn) Recording() (*Recording, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sent, err := reframe(t.sent.Bytes())
	if err != nil {
		return nil, fmt.Errorf("sectest: client stream: %w", err)
	}
	rcvd, err := reframe(t.rcvd.Bytes())
	if err != nil {
		return nil, fmt.Errorf("sectest: server stream: %w", err)
	}
	return &Recording{ClientFrames: sent, ServerFrames: rcvd}, nil
}

func reframe(stream []byte) ([][]byte, error) {
	var frames [][]byte
	r := bytes.NewReader(stream)
	for r.Len() > 0 {
		f, err := wire.ReadFrame(r)
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// ErrNotRecovered reports that the offline attack failed: no recorded
// sealed frame opened under any key the attacker could derive.
var ErrNotRecovered = errors.New("sectest: no recorded frame decrypted")

// RecoverSession mounts the retroactive-compromise attack: given a full
// session transcript and the long-term master secret (leaked AFTER the
// recording was made), derive the session keys and decrypt the traffic.
//
// Against the pre-v4 handshake this attack succeeds: both handshake
// nonces travel in plaintext, and SessionSecret(master, nonces) is all
// there is. Against the v4 AKE the schedule also mixes an X25519
// ephemeral-ephemeral secret (or a prior session's resumption secret),
// neither of which the transcript or the master reveals — the attacker
// runs its best derivations and every frame stays sealed.
func RecoverSession(master []byte, rec *Recording) ([][]byte, error) {
	if len(rec.ClientFrames) == 0 || len(rec.ServerFrames) == 0 {
		return nil, errors.New("sectest: transcript too short to attack")
	}
	hm, err := wire.Decode(rec.ClientFrames[0])
	if err != nil {
		return nil, fmt.Errorf("sectest: first client frame: %w", err)
	}
	hello, ok := hm.(*wire.Hello)
	if !ok {
		return nil, fmt.Errorf("sectest: first client frame is %T, want HELLO", hm)
	}
	cm, err := wire.Decode(rec.ServerFrames[0])
	if err != nil {
		return nil, fmt.Errorf("sectest: first server frame: %w", err)
	}

	switch ch := cm.(type) {
	case *wire.Challenge:
		// Legacy derivation: everything it needs is on the wire.
		nonces := append(append([]byte(nil), hello.Nonce[:]...), ch.ServerNonce[:]...)
		return openAll(securelink.SessionSecret(master, nonces), rec)
	case *wire.Challenge2:
		// v4: run the real schedule with every input the attacker holds
		// (transcript + master), then fall back to the legacy derivation
		// in case the session secret ever regresses to nonce-only.
		sched := securelink.NewHandshake(securelink.HandshakeLabelV4)
		sched.MixHash(hello.TranscriptBytes())
		sched.MixHash(ch.Encode())
		sched.MixKey(master)
		if plain, err := openAll(sched.SessionSecret(), rec); err == nil {
			return plain, nil
		}
		// A second guess: maybe the missing DH/resumption input is the
		// all-zero block a broken implementation would mix.
		sched2 := securelink.NewHandshake(securelink.HandshakeLabelV4)
		sched2.MixHash(hello.TranscriptBytes())
		sched2.MixHash(ch.Encode())
		sched2.MixKey(master)
		sched2.MixKey(make([]byte, 32))
		if plain, err := openAll(sched2.SessionSecret(), rec); err == nil {
			return plain, nil
		}
		nonces := append(append([]byte(nil), hello.Nonce[:]...), ch.ServerNonce[:]...)
		return openAll(securelink.SessionSecret(master, nonces), rec)
	default:
		return nil, fmt.Errorf("sectest: first server frame is %T, want a challenge", cm)
	}
}

// openAll rebuilds both link directions from a candidate session secret
// and tries every recorded sealed frame, in recorded order (so sequence
// numbers line up if the key is right). Frame 0 of each direction is the
// plaintext handshake and is skipped.
func openAll(sessionSecret []byte, rec *Recording) ([][]byte, error) {
	shield, prog, err := securelink.Pair(sessionSecret)
	if err != nil {
		return nil, err
	}
	var plain [][]byte
	for _, f := range rec.ServerFrames[1:] {
		if p, err := prog.Open(f); err == nil {
			plain = append(plain, p)
		}
	}
	for _, f := range rec.ClientFrames[1:] {
		if p, err := shield.Open(f); err == nil {
			plain = append(plain, p)
		}
	}
	if len(plain) == 0 {
		return nil, ErrNotRecovered
	}
	return plain, nil
}

// V4Handshake is the outcome of one hand-driven v4 handshake.
type V4Handshake struct {
	Link      *securelink.Link
	Version   uint8
	SessionID uint64
	Ticket    []byte // fresh single-use resumption ticket from the ack
	RMS       []byte // the resumption secret that ticket will resume with
	Resumed   bool   // the server resumed from the ticket we presented
}

// RunV4Handshake drives the client side of the v4 stream handshake by
// hand — the attacker-steerable twin of the production client. ticket
// and rms optionally present resumption state; rms == nil models a thief
// holding only the ticket bytes, who must guess the resumption secret
// (the guess is the all-zero block). Returns an error whenever the
// handshake cannot complete — in particular when the sealed HELLO-ACK
// does not open under the keys this end derived.
func RunV4Handshake(conn net.Conn, master []byte, ticket, rms []byte, seed int64) (*V4Handshake, error) {
	eph, err := securelink.NewEphemeral()
	if err != nil {
		return nil, err
	}
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, err
	}
	hello := &wire.Hello{Version: 4, Nonce: nonce, Seed: seed, KeyShare: eph.Public(), Ticket: ticket}
	if err := wire.WriteFrame(conn, hello.Encode()); err != nil {
		return nil, err
	}
	transcript := hello.TranscriptBytes()

	raw, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	m, err := wire.Decode(raw)
	if err != nil {
		return nil, err
	}
	ch, ok := m.(*wire.Challenge2)
	if !ok {
		if e, isErr := m.(*wire.Error); isErr {
			return nil, fmt.Errorf("sectest: server refused: %s", e.Msg)
		}
		return nil, fmt.Errorf("sectest: server answered %T, want CHALLENGE2", m)
	}

	sched := securelink.NewHandshake(securelink.HandshakeLabelV4)
	sched.MixHash(transcript)
	sched.MixHash(ch.Encode())
	sched.MixKey(master)
	if ch.Resumed {
		if rms == nil {
			rms = make([]byte, 32) // the thief's best guess
		}
		sched.MixKey(rms)
	} else {
		dh, err := eph.Shared(ch.KeyShare)
		if err != nil {
			return nil, fmt.Errorf("sectest: server key share: %w", err)
		}
		sched.MixKey(dh)
	}
	_, link, err := securelink.Pair(sched.SessionSecret())
	if err != nil {
		return nil, err
	}

	raw, err = wire.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	plain, err := link.Open(raw)
	if err != nil {
		return nil, fmt.Errorf("sectest: sealed ack did not open: %w", err)
	}
	am, err := wire.Decode(plain)
	if err != nil {
		return nil, err
	}
	ack, ok := am.(*wire.HelloAck)
	if !ok {
		return nil, fmt.Errorf("sectest: sealed ack decoded to %T", am)
	}
	return &V4Handshake{
		Link:      link,
		Version:   ack.Version,
		SessionID: ack.SessionID,
		Ticket:    ack.Ticket,
		RMS:       sched.ResumptionSecret(),
		Resumed:   ch.Resumed,
	}, nil
}

// Rewrite inspects one decoded frame in flight and returns the frame to
// forward instead (return the input unchanged to pass it through).
type Rewrite func(wire.Message, []byte) []byte

// RelayFrames is a man-in-the-middle relay between two stream ends: it
// re-frames each direction and passes every frame through the matching
// rewrite hook. Sealed frames do not decode; they are forwarded as-is
// with a nil Message. The relay runs until either side closes.
func RelayFrames(clientSide, serverSide net.Conn, c2s, s2c Rewrite) {
	pump := func(src, dst net.Conn, rw Rewrite) {
		defer dst.Close()
		for {
			f, err := wire.ReadFrame(src)
			if err != nil {
				return
			}
			if rw != nil {
				m, _ := wire.Decode(f) // nil for sealed frames
				f = rw(m, f)
			}
			if err := wire.WriteFrame(dst, f); err != nil {
				return
			}
		}
	}
	go pump(clientSide, serverSide, c2s)
	go pump(serverSide, clientSide, s2c)
}
