package securelink

import (
	"bytes"
	"testing"
	"testing/quick"
)

func pairOrDie(t *testing.T) (*Link, *Link) {
	t.Helper()
	shield, prog, err := Pair([]byte("pairing-secret-0001"))
	if err != nil {
		t.Fatal(err)
	}
	return shield, prog
}

func TestSealOpenRoundTrip(t *testing.T) {
	shield, prog := pairOrDie(t)
	msg := []byte("interrogate")
	ct := prog.Seal(msg)
	pt, err := shield.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatalf("round trip = %q", pt)
	}
}

func TestBidirectional(t *testing.T) {
	shield, prog := pairOrDie(t)
	up := prog.Seal([]byte("cmd"))
	if _, err := shield.Open(up); err != nil {
		t.Fatal(err)
	}
	down := shield.Seal([]byte("data"))
	if pt, err := prog.Open(down); err != nil || string(pt) != "data" {
		t.Fatalf("downlink failed: %v %q", err, pt)
	}
}

func TestRejectsTamper(t *testing.T) {
	shield, prog := pairOrDie(t)
	ct := prog.Seal([]byte("set therapy 120"))
	ct[len(ct)-1] ^= 0x01
	if _, err := shield.Open(ct); err != ErrAuth {
		t.Fatalf("tampered open error = %v, want ErrAuth", err)
	}
}

func TestRejectsReplay(t *testing.T) {
	shield, prog := pairOrDie(t)
	ct := prog.Seal([]byte("once"))
	if _, err := shield.Open(ct); err != nil {
		t.Fatal(err)
	}
	if _, err := shield.Open(ct); err != ErrReplay {
		t.Fatalf("replay error = %v, want ErrReplay", err)
	}
}

func TestRejectsCrossDirection(t *testing.T) {
	shield, _ := pairOrDie(t)
	// A message the shield sealed must not open at the shield itself.
	ct := shield.Seal([]byte("loopback"))
	if _, err := shield.Open(ct); err == nil {
		t.Fatal("directional keys must differ")
	}
}

func TestRejectsShort(t *testing.T) {
	shield, _ := pairOrDie(t)
	if _, err := shield.Open([]byte{1, 2, 3}); err != ErrShort {
		t.Fatalf("short error = %v", err)
	}
}

func TestDifferentSecretsDoNotInterop(t *testing.T) {
	_, progA, err := Pair([]byte("secret-A"))
	if err != nil {
		t.Fatal(err)
	}
	shieldB, _, err := Pair([]byte("secret-B"))
	if err != nil {
		t.Fatal(err)
	}
	ct := progA.Seal([]byte("hello"))
	if _, err := shieldB.Open(ct); err == nil {
		t.Fatal("links paired with different secrets must not interop")
	}
}

func TestSequenceSurvivesManyMessagesProperty(t *testing.T) {
	shield, prog := pairOrDie(t)
	f := func(payload []byte) bool {
		ct := prog.Seal(payload)
		pt, err := shield.Open(ct)
		return err == nil && bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
