package securelink

import (
	"bytes"
	"encoding/binary"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func pairOrDie(t *testing.T) (*Link, *Link) {
	t.Helper()
	shield, prog, err := Pair([]byte("pairing-secret-0001"))
	if err != nil {
		t.Fatal(err)
	}
	return shield, prog
}

func TestSealOpenRoundTrip(t *testing.T) {
	shield, prog := pairOrDie(t)
	msg := []byte("interrogate")
	ct := prog.Seal(msg)
	pt, err := shield.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatalf("round trip = %q", pt)
	}
}

func TestBidirectional(t *testing.T) {
	shield, prog := pairOrDie(t)
	up := prog.Seal([]byte("cmd"))
	if _, err := shield.Open(up); err != nil {
		t.Fatal(err)
	}
	down := shield.Seal([]byte("data"))
	if pt, err := prog.Open(down); err != nil || string(pt) != "data" {
		t.Fatalf("downlink failed: %v %q", err, pt)
	}
}

func TestRejectsTamper(t *testing.T) {
	shield, prog := pairOrDie(t)
	ct := prog.Seal([]byte("set therapy 120"))
	ct[len(ct)-1] ^= 0x01
	if _, err := shield.Open(ct); err != ErrAuth {
		t.Fatalf("tampered open error = %v, want ErrAuth", err)
	}
}

func TestRejectsReplay(t *testing.T) {
	shield, prog := pairOrDie(t)
	ct := prog.Seal([]byte("once"))
	if _, err := shield.Open(ct); err != nil {
		t.Fatal(err)
	}
	if _, err := shield.Open(ct); err != ErrReplay {
		t.Fatalf("replay error = %v, want ErrReplay", err)
	}
}

func TestRejectsCrossDirection(t *testing.T) {
	shield, _ := pairOrDie(t)
	// A message the shield sealed must not open at the shield itself.
	ct := shield.Seal([]byte("loopback"))
	if _, err := shield.Open(ct); err == nil {
		t.Fatal("directional keys must differ")
	}
}

func TestRejectsShort(t *testing.T) {
	shield, _ := pairOrDie(t)
	if _, err := shield.Open([]byte{1, 2, 3}); err != ErrShort {
		t.Fatalf("short error = %v", err)
	}
}

func TestDifferentSecretsDoNotInterop(t *testing.T) {
	_, progA, err := Pair([]byte("secret-A"))
	if err != nil {
		t.Fatal(err)
	}
	shieldB, _, err := Pair([]byte("secret-B"))
	if err != nil {
		t.Fatal(err)
	}
	ct := progA.Seal([]byte("hello"))
	if _, err := shieldB.Open(ct); err == nil {
		t.Fatal("links paired with different secrets must not interop")
	}
}

func TestSequenceSurvivesManyMessagesProperty(t *testing.T) {
	shield, prog := pairOrDie(t)
	f := func(payload []byte) bool {
		ct := prog.Seal(payload)
		pt, err := shield.Open(ct)
		return err == nil && bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent senders must never reuse a sequence number (= GCM nonce):
// every sealed frame must carry a distinct seq and open cleanly at the
// peer in seq order. This is the contract the pipelined shieldd mux
// relies on; run it under -race to catch torn rekey state too.
func TestConcurrentSealIsNonceUnique(t *testing.T) {
	shield, prog := pairOrDie(t)
	prog.EnableRekey(64)
	shield.EnableRekey(64)

	const senders, perSender = 8, 100
	sealed := make([][][]byte, senders)
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sealed[g] = make([][]byte, perSender)
			for i := 0; i < perSender; i++ {
				sealed[g][i] = prog.Seal([]byte{byte(g), byte(i)})
			}
		}(g)
	}
	wg.Wait()

	// Collect every frame, order by its claimed sequence number, and
	// check uniqueness + that each opens.
	all := make([][]byte, 0, senders*perSender)
	for _, frames := range sealed {
		all = append(all, frames...)
	}
	sort.Slice(all, func(i, j int) bool {
		return binary.BigEndian.Uint64(all[i][:8]) < binary.BigEndian.Uint64(all[j][:8])
	})
	for i, frame := range all {
		if got := binary.BigEndian.Uint64(frame[:8]); got != uint64(i) {
			t.Fatalf("frame %d claims seq %d: concurrent Seal reused or skipped a sequence", i, got)
		}
		if _, err := shield.Open(frame); err != nil {
			t.Fatalf("frame with seq %d does not open: %v", i, err)
		}
	}
}

// Stats must count sealed/opened traffic, replay drops, auth failures,
// and rekey epoch advances.
func TestStatsCounters(t *testing.T) {
	shield, prog := pairOrDie(t)
	prog.EnableRekey(4)
	shield.EnableRekey(4)

	var frames [][]byte
	for i := 0; i < 10; i++ {
		frames = append(frames, prog.Seal([]byte("m")))
	}
	for _, f := range frames {
		if _, err := shield.Open(f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := shield.Open(frames[9]); err != ErrReplay {
		t.Fatalf("replay error = %v", err)
	}
	bad := append([]byte(nil), frames[9]...)
	bad[len(bad)-1] ^= 1
	bad[3] ^= 1 // also bump the seq so it is not a replay
	if _, err := shield.Open(bad); err != ErrAuth {
		t.Fatalf("tampered error = %v", err)
	}

	ps, ss := prog.Stats(), shield.Stats()
	if ps.MsgsSealed != 10 || ps.BytesSealed == 0 {
		t.Errorf("prog sealed stats = %+v", ps)
	}
	// 10 messages at rekeyEvery=4 crosses epochs 1 and 2 on both ends.
	if ps.Rekeys != 2 || ss.Rekeys != 2 {
		t.Errorf("rekey counts: prog %d shield %d, want 2 and 2", ps.Rekeys, ss.Rekeys)
	}
	if ss.MsgsOpened != 10 || ss.BytesOpened == 0 {
		t.Errorf("shield open stats = %+v", ss)
	}
	if ss.ReplayDrops != 1 {
		t.Errorf("shield replay drops = %d, want 1", ss.ReplayDrops)
	}
	if ss.AuthFails != 1 {
		t.Errorf("shield auth fails = %d, want 1", ss.AuthFails)
	}
}
