package securelink

import (
	"bytes"
	"testing"
	"time"
)

// Both ends running the same key schedule over the same transcript and
// secrets must derive identical session and resumption secrets, and the
// two secrets must differ from each other.
func TestHandshakeScheduleAgreement(t *testing.T) {
	ca, err := NewEphemeral()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewEphemeral()
	if err != nil {
		t.Fatal(err)
	}
	master := []byte("provisioned-master-secret")

	run := func(eph *Ephemeral, peerShare []byte) (session, resumption []byte) {
		hs := NewHandshake(HandshakeLabelV4)
		hs.MixHash([]byte("hello-transcript-bytes"))
		hs.MixHash([]byte("challenge2-transcript-bytes"))
		hs.MixKey(master)
		dh, err := eph.Shared(peerShare)
		if err != nil {
			t.Fatal(err)
		}
		hs.MixKey(dh)
		return hs.SessionSecret(), hs.ResumptionSecret()
	}

	cs, cr := run(ca, sa.Public())
	ss, sr := run(sa, ca.Public())
	if !bytes.Equal(cs, ss) {
		t.Fatal("the two ends derived different session secrets")
	}
	if !bytes.Equal(cr, sr) {
		t.Fatal("the two ends derived different resumption secrets")
	}
	if bytes.Equal(cs, cr) {
		t.Fatal("session and resumption secrets are identical")
	}
	if len(cs) != 32 || len(cr) != 32 {
		t.Fatalf("secret lengths %d/%d, want 32", len(cs), len(cr))
	}
}

// Any divergence — transcript bytes, mixed keys, or the DH pairing —
// must change the derived session secret.
func TestHandshakeScheduleSensitivity(t *testing.T) {
	derive := func(msgs [][]byte, keys [][]byte) []byte {
		hs := NewHandshake(HandshakeLabelV4)
		for _, m := range msgs {
			hs.MixHash(m)
		}
		for _, k := range keys {
			hs.MixKey(k)
		}
		return hs.SessionSecret()
	}
	base := derive([][]byte{[]byte("hello"), []byte("challenge")}, [][]byte{[]byte("psk"), []byte("dh")})
	variants := map[string][]byte{
		"tampered message":  derive([][]byte{[]byte("hellx"), []byte("challenge")}, [][]byte{[]byte("psk"), []byte("dh")}),
		"reordered mixes":   derive([][]byte{[]byte("challenge"), []byte("hello")}, [][]byte{[]byte("psk"), []byte("dh")}),
		"different psk":     derive([][]byte{[]byte("hello"), []byte("challenge")}, [][]byte{[]byte("psq"), []byte("dh")}),
		"different dh":      derive([][]byte{[]byte("hello"), []byte("challenge")}, [][]byte{[]byte("psk"), []byte("dj")}),
		"shifted boundary":  derive([][]byte{[]byte("helloch"), []byte("allenge")}, [][]byte{[]byte("psk"), []byte("dh")}),
		"different label":   nil,
		"repeatable (same)": derive([][]byte{[]byte("hello"), []byte("challenge")}, [][]byte{[]byte("psk"), []byte("dh")}),
	}
	other := NewHandshake("some other label")
	other.MixHash([]byte("hello"))
	other.MixHash([]byte("challenge"))
	other.MixKey([]byte("psk"))
	other.MixKey([]byte("dh"))
	variants["different label"] = other.SessionSecret()

	for name, got := range variants {
		same := bytes.Equal(got, base)
		if name == "repeatable (same)" {
			if !same {
				t.Error("identical schedule did not reproduce the secret")
			}
			continue
		}
		if same {
			t.Errorf("%s left the session secret unchanged", name)
		}
	}
}

func TestEphemeralRejectsBadShares(t *testing.T) {
	e, err := NewEphemeral()
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Public()) != KeyShareLen {
		t.Fatalf("key share length %d, want %d", len(e.Public()), KeyShareLen)
	}
	if _, err := e.Shared(make([]byte, 7)); err == nil {
		t.Fatal("short key share accepted")
	}
	// The all-zero share is a low-order point; X25519 must reject the
	// all-zero shared secret it would produce.
	if _, err := e.Shared(make([]byte, KeyShareLen)); err == nil {
		t.Fatal("low-order key share accepted")
	}
}

func newTestTicketSource(t *testing.T, interval, lifetime time.Duration) (*TicketSource, *time.Time) {
	t.Helper()
	ts, err := NewTicketSource(interval, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1_700_000_000, 0)
	ts.now = func() time.Time { return clock }
	if interval > 0 {
		ts.nextRot = clock.Add(interval)
	}
	return ts, &clock
}

func TestTicketMintRedeem(t *testing.T) {
	ts, _ := newTestTicketSource(t, 0, time.Hour)
	rms := bytes.Repeat([]byte{0x42}, 32)
	tk, err := ts.Mint(rms, "10.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Peek(tk, "10.0.0.1:9999") {
		t.Fatal("fresh ticket does not peek at its issuing address")
	}
	if ts.Peek(tk, "10.0.0.2:9999") {
		t.Fatal("ticket peeked at a different address")
	}
	got, ok := ts.Redeem(tk)
	if !ok || !bytes.Equal(got, rms) {
		t.Fatalf("redeem = (%x, %v), want original secret", got, ok)
	}
	// Single use: a second redeem (or peek) of the same bytes fails.
	if _, ok := ts.Redeem(tk); ok {
		t.Fatal("ticket redeemed twice")
	}
	if ts.Peek(tk, "10.0.0.1:9999") {
		t.Fatal("redeemed ticket still peeks")
	}
}

func TestTicketRejectsGarbage(t *testing.T) {
	ts, _ := newTestTicketSource(t, 0, time.Hour)
	rms := bytes.Repeat([]byte{0x42}, 32)
	if _, err := ts.Mint(rms[:16], "addr"); err == nil {
		t.Fatal("short resumption secret minted")
	}
	tk, err := ts.Mint(rms, "addr")
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), tk...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, ok := ts.Redeem(corrupt); ok {
		t.Fatal("corrupted ticket redeemed")
	}
	wrongEpoch := append([]byte(nil), tk...)
	wrongEpoch[0] += 3
	if _, ok := ts.Redeem(wrongEpoch); ok {
		t.Fatal("retired-epoch ticket redeemed")
	}
	if _, ok := ts.Redeem(tk[:8]); ok {
		t.Fatal("truncated ticket redeemed")
	}
	if _, ok := ts.Redeem(nil); ok {
		t.Fatal("empty ticket redeemed")
	}
	// The corruption attempts must not have consumed the real ticket.
	if _, ok := ts.Redeem(tk); !ok {
		t.Fatal("intact ticket no longer redeems")
	}
}

func TestTicketExpiry(t *testing.T) {
	ts, clock := newTestTicketSource(t, 0, time.Hour)
	rms := bytes.Repeat([]byte{0x42}, 32)
	tk, err := ts.Mint(rms, "addr")
	if err != nil {
		t.Fatal(err)
	}
	*clock = clock.Add(59 * time.Minute)
	if !ts.Peek(tk, "addr") {
		t.Fatal("unexpired ticket refused")
	}
	*clock = clock.Add(2 * time.Minute)
	if ts.Peek(tk, "addr") {
		t.Fatal("expired ticket peeked")
	}
	if _, ok := ts.Redeem(tk); ok {
		t.Fatal("expired ticket redeemed")
	}
}

// Key rotation mirrors CookieSource: a ticket survives one interval of
// silence (previous key still opens it) but not a multi-interval quiet
// period, even though its own lifetime has not elapsed.
func TestTicketQuietPeriodRetiresOldKeys(t *testing.T) {
	ts, clock := newTestTicketSource(t, time.Hour, 24*time.Hour)
	rms := bytes.Repeat([]byte{0x42}, 32)
	tk, err := ts.Mint(rms, "addr")
	if err != nil {
		t.Fatal(err)
	}
	*clock = clock.Add(90 * time.Minute)
	if !ts.Peek(tk, "addr") {
		t.Fatal("ticket one interval old refused")
	}
	tk2, err := ts.Mint(rms, "addr")
	if err != nil {
		t.Fatal(err)
	}
	*clock = clock.Add(150 * time.Minute)
	if ts.Peek(tk2, "addr") {
		t.Fatal("ticket survived a two-interval quiet period")
	}
}

func TestTicketUsedSetBounded(t *testing.T) {
	ts, _ := newTestTicketSource(t, 0, time.Hour)
	rms := bytes.Repeat([]byte{0x42}, 32)
	first, err := ts.Mint(rms, "addr")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ts.Redeem(first); !ok {
		t.Fatal("first ticket did not redeem")
	}
	// Overflow the replay filter; the first ticket's entry is evicted.
	for i := 0; i < maxUsedTickets; i++ {
		tk, err := ts.Mint(rms, "addr")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ts.Redeem(tk); !ok {
			t.Fatalf("ticket %d did not redeem", i)
		}
	}
	if len(ts.used) > maxUsedTickets || len(ts.usedOrder) > maxUsedTickets {
		t.Fatalf("replay filter grew to %d/%d entries", len(ts.used), len(ts.usedOrder))
	}
}
