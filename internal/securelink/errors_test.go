package securelink_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"heartshield/internal/securelink"
	"heartshield/internal/wire"
)

// wireKindMessages returns one encoded message of every wire frame kind —
// the payloads the error-path table drives through the link, so every
// frame the shieldd protocol can carry is covered.
func wireKindMessages() map[string][]byte {
	hello := &wire.Hello{Version: wire.Version, Seed: 1}
	return map[string][]byte{
		"hello":           hello.Encode(),
		"challenge":       (&wire.Challenge{}).Encode(),
		"hello-ack":       (&wire.HelloAck{Version: wire.Version, SessionID: 7}).Encode(),
		"exchange-req":    (&wire.ExchangeReq{IMD: 1, Cmd: wire.CmdSetTherapy}).Encode(),
		"exchange-resp":   (&wire.ExchangeResp{Response: []byte("data"), ResponseCommand: "data-response", EavesBER: 0.5, CancellationDB: 32}).Encode(),
		"attack-req":      (&wire.AttackReq{Cmd: wire.CmdInterrogate, ShieldOn: true}).Encode(),
		"attack-resp":     (&wire.AttackResp{ShieldJammed: true, AdversaryRSSIDBm: -30}).Encode(),
		"experiment-req":  (&wire.ExperimentReq{Name: "fig7", Seed: 1, Quick: true}).Encode(),
		"experiment-resp": (&wire.ExperimentResp{Rendered: "rows\n"}).Encode(),
		"status-req":      (&wire.StatusReq{}).Encode(),
		"status-resp":     (&wire.StatusResp{ActiveSessions: 1}).Encode(),
		"bye":             (&wire.Bye{}).Encode(),
		"error":           (&wire.Error{Code: wire.CodeBadRequest, Msg: "no"}).Encode(),
	}
}

func newPair(t testing.TB) (*securelink.Link, *securelink.Link) {
	t.Helper()
	shield, prog, err := securelink.Pair([]byte("table-test-secret"))
	if err != nil {
		t.Fatal(err)
	}
	return shield, prog
}

// Every frame kind must round-trip sealed, and must surface exactly
// ErrShort on truncation below the header, ErrAuth on any bit flip, and
// ErrReplay on a second delivery.
func TestErrorPathsEveryFrameKind(t *testing.T) {
	for kind, payload := range wireKindMessages() {
		kind, payload := kind, payload
		t.Run(kind, func(t *testing.T) {
			shield, prog := newPair(t)

			sealed := prog.Seal(payload)

			// Truncation below the 8-byte sequence header: ErrShort.
			for _, n := range []int{0, 1, 7} {
				if _, err := shield.Open(sealed[:n]); !errors.Is(err, securelink.ErrShort) {
					t.Fatalf("truncated to %d bytes: err = %v, want ErrShort", n, err)
				}
			}

			// Any single bit flip — header, body, or tag: ErrAuth.
			for _, pos := range []int{0, 8, len(sealed) - 1} {
				tampered := append([]byte(nil), sealed...)
				tampered[pos] ^= 0x80
				if _, err := shield.Open(tampered); !errors.Is(err, securelink.ErrAuth) {
					t.Fatalf("bit flip at %d: err = %v, want ErrAuth", pos, err)
				}
			}

			// Failed opens must not have consumed the sequence number.
			pt, err := shield.Open(sealed)
			if err != nil {
				t.Fatalf("open after failed attempts: %v", err)
			}
			if !bytes.Equal(pt, payload) {
				t.Fatalf("round trip = %x, want %x", pt, payload)
			}

			// Exact replay: ErrReplay.
			if _, err := shield.Open(sealed); !errors.Is(err, securelink.ErrReplay) {
				t.Fatalf("replay err = %v, want ErrReplay", err)
			}
		})
	}
}

// With the default strict ordering, delivering frames out of order is a
// replay error; with a window, bounded reordering is accepted exactly
// once and replays inside the window are still rejected.
func TestSequenceWindow(t *testing.T) {
	t.Run("strict-rejects-reorder", func(t *testing.T) {
		shield, prog := newPair(t)
		m0 := prog.Seal([]byte("m0"))
		m1 := prog.Seal([]byte("m1"))
		if _, err := shield.Open(m1); err != nil {
			t.Fatal(err)
		}
		if _, err := shield.Open(m0); !errors.Is(err, securelink.ErrReplay) {
			t.Fatalf("reordered open err = %v, want ErrReplay", err)
		}
	})

	t.Run("window-accepts-bounded-reorder", func(t *testing.T) {
		shield, prog := newPair(t)
		shield.SetWindow(4)
		prog.SetWindow(4)
		var sealed [][]byte
		for i := 0; i < 6; i++ {
			sealed = append(sealed, prog.Seal([]byte{byte(i)}))
		}
		// Deliver 0, 3, 1, 2 — all within the window of 4.
		for _, i := range []int{0, 3, 1, 2} {
			if _, err := shield.Open(sealed[i]); err != nil {
				t.Fatalf("windowed open of seq %d: %v", i, err)
			}
		}
		// Each is still rejected on second delivery.
		for _, i := range []int{0, 1, 2, 3} {
			if _, err := shield.Open(sealed[i]); !errors.Is(err, securelink.ErrReplay) {
				t.Fatalf("windowed replay of seq %d: err = %v, want ErrReplay", i, err)
			}
		}
		// Jump ahead to 5; 0 is now 5 behind — outside the window.
		if _, err := shield.Open(sealed[5]); err != nil {
			t.Fatal(err)
		}
		old := prog.Seal([]byte("past")) // seq 6, fresh — sanity that link still works
		if _, err := shield.Open(old); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("window-rejects-too-old", func(t *testing.T) {
		shield, prog := newPair(t)
		shield.SetWindow(2)
		var sealed [][]byte
		for i := 0; i < 5; i++ {
			sealed = append(sealed, prog.Seal([]byte{byte(i)}))
		}
		if _, err := shield.Open(sealed[4]); err != nil {
			t.Fatal(err)
		}
		// seq 1 is 3 behind the highest (4): outside window 2.
		if _, err := shield.Open(sealed[1]); !errors.Is(err, securelink.ErrReplay) {
			t.Fatalf("too-old open err = %v, want ErrReplay", err)
		}
		// seq 2 is exactly window positions behind: inclusive, accepted.
		if _, err := shield.Open(sealed[2]); err != nil {
			t.Fatalf("boundary open err = %v", err)
		}
		// seq 3 is 1 behind: inside.
		if _, err := shield.Open(sealed[3]); err != nil {
			t.Fatalf("in-window open err = %v", err)
		}
	})

	t.Run("window-of-one-tolerates-swap", func(t *testing.T) {
		// The minimal window must actually buy something: two adjacent
		// frames delivered swapped both arrive.
		shield, prog := newPair(t)
		shield.SetWindow(1)
		m0 := prog.Seal([]byte("m0"))
		m1 := prog.Seal([]byte("m1"))
		if _, err := shield.Open(m1); err != nil {
			t.Fatal(err)
		}
		if _, err := shield.Open(m0); err != nil {
			t.Fatalf("swapped open with window 1: %v", err)
		}
		if _, err := shield.Open(m0); !errors.Is(err, securelink.ErrReplay) {
			t.Fatalf("replay after swap err = %v, want ErrReplay", err)
		}
	})
}

// The rekey ratchet: messages across an epoch boundary keep flowing with
// no extra handshake, old-epoch frames die as replays, tampering at the
// boundary does not advance receiver state, and the two ends stay in sync
// over many epochs.
func TestRekey(t *testing.T) {
	const every = 4

	t.Run("across-epochs", func(t *testing.T) {
		shield, prog := newPair(t)
		shield.EnableRekey(every)
		prog.EnableRekey(every)
		for i := 0; i < 3*every+1; i++ {
			msg := []byte{byte(i)}
			pt, err := shield.Open(prog.Seal(msg))
			if err != nil {
				t.Fatalf("msg %d (epoch %d): %v", i, i/every, err)
			}
			if !bytes.Equal(pt, msg) {
				t.Fatalf("msg %d corrupted", i)
			}
		}
	})

	t.Run("old-epoch-replay-rejected", func(t *testing.T) {
		shield, prog := newPair(t)
		shield.EnableRekey(every)
		shield.SetWindow(16) // window must not resurrect an old epoch
		prog.EnableRekey(every)
		var sealed [][]byte
		for i := 0; i < every+1; i++ {
			sealed = append(sealed, prog.Seal([]byte{byte(i)}))
		}
		for _, s := range sealed {
			if _, err := shield.Open(s); err != nil {
				t.Fatal(err)
			}
		}
		// Epoch 0 frames are gone forever, window notwithstanding.
		if _, err := shield.Open(sealed[1]); !errors.Is(err, securelink.ErrReplay) {
			t.Fatalf("old-epoch replay err = %v, want ErrReplay", err)
		}
	})

	t.Run("tamper-does-not-advance-epoch", func(t *testing.T) {
		shield, prog := newPair(t)
		shield.EnableRekey(every)
		prog.EnableRekey(every)
		var sealed [][]byte
		for i := 0; i < every+2; i++ {
			sealed = append(sealed, prog.Seal([]byte{byte(i)}))
		}
		// Tampered next-epoch frame: ErrAuth, and the receiver must still
		// accept the current epoch afterwards.
		bad := append([]byte(nil), sealed[every]...)
		bad[len(bad)-1] ^= 1
		if _, err := shield.Open(bad); !errors.Is(err, securelink.ErrAuth) {
			t.Fatalf("tampered epoch-crossing err = %v, want ErrAuth", err)
		}
		for i := 0; i < every+2; i++ {
			if _, err := shield.Open(sealed[i]); err != nil {
				t.Fatalf("msg %d after failed epoch probe: %v", i, err)
			}
		}
	})

	t.Run("absurd-epoch-jump-rejected", func(t *testing.T) {
		shield, prog := newPair(t)
		shield.EnableRekey(every)
		prog.EnableRekey(every)
		// Forge a far-future sequence number; the receiver must refuse to
		// ratchet that far on an unverified frame.
		forged := make([]byte, 8+16)
		binary.BigEndian.PutUint64(forged, uint64(every)*(1<<13))
		if _, err := shield.Open(forged); !errors.Is(err, securelink.ErrAuth) {
			t.Fatalf("absurd epoch jump err = %v, want ErrAuth", err)
		}
		if _, err := shield.Open(prog.Seal([]byte("still fine"))); err != nil {
			t.Fatalf("link broken after forged jump: %v", err)
		}
	})

	t.Run("rekeyed-links-do-not-reuse-old-keys", func(t *testing.T) {
		// A frame sealed for epoch 1 must not open under the epoch-0 key:
		// pair two identical links, rekey only the sender side past the
		// boundary, and check a receiver frozen at epoch 0 rejects it.
		shield, prog := newPair(t)
		prog.EnableRekey(every)
		var last []byte
		for i := 0; i < every+1; i++ {
			last = prog.Seal([]byte{byte(i)})
		}
		// shield never enabled rekeying: for it, the epoch-1 frame is
		// sealed under a key it does not know.
		if _, err := shield.Open(last); !errors.Is(err, securelink.ErrAuth) {
			t.Fatalf("epoch-1 frame under epoch-0 key err = %v, want ErrAuth", err)
		}
	})
}

// SessionSecret must give independent links per nonce: a frame sealed for
// one session never opens in another, while equal nonces interoperate.
func TestSessionSecretDerivation(t *testing.T) {
	master := []byte("master")
	nA := []byte("nonce-A")
	nB := []byte("nonce-B")
	_, progA, err := securelink.Pair(securelink.SessionSecret(master, nA))
	if err != nil {
		t.Fatal(err)
	}
	shieldA2, _, err := securelink.Pair(securelink.SessionSecret(master, nA))
	if err != nil {
		t.Fatal(err)
	}
	shieldB, _, err := securelink.Pair(securelink.SessionSecret(master, nB))
	if err != nil {
		t.Fatal(err)
	}
	ct := progA.Seal([]byte("hi"))
	if _, err := shieldB.Open(ct); err == nil {
		t.Fatal("cross-session open succeeded")
	}
	if pt, err := shieldA2.Open(ct); err != nil || !bytes.Equal(pt, []byte("hi")) {
		t.Fatalf("same-nonce open: %v %q", err, pt)
	}
}
