// Package securelink implements the authenticated encrypted channel
// between the shield and authorized programmers (§4 of the paper assumes
// such a channel exists; the pairing itself can be in-band or out-of-band).
// It provides AES-256-GCM sealing with directional keys derived from a
// shared pairing secret and strictly monotonic sequence numbers for replay
// protection.
package securelink

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Errors returned by Open.
var (
	ErrAuth   = errors.New("securelink: authentication failed")
	ErrReplay = errors.New("securelink: replayed or reordered message")
	ErrShort  = errors.New("securelink: ciphertext too short")
)

// Link is one directional pair of AEAD states: messages sealed by one end
// open only at the peer, and each direction enforces a strictly increasing
// sequence number.
type Link struct {
	send    cipher.AEAD
	recv    cipher.AEAD
	sendSeq uint64
	recvSeq uint64 // highest sequence accepted so far + 1
}

// deriveKey expands the pairing secret into a directional 32-byte key.
func deriveKey(secret []byte, label string) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Pair derives the two ends of a shield↔programmer link from a shared
// pairing secret. The first return value belongs to the shield, the second
// to the programmer.
func Pair(secret []byte) (*Link, *Link, error) {
	s2p, err := newAEAD(deriveKey(secret, "shield->programmer"))
	if err != nil {
		return nil, nil, err
	}
	p2s, err := newAEAD(deriveKey(secret, "programmer->shield"))
	if err != nil {
		return nil, nil, err
	}
	shield := &Link{send: s2p, recv: p2s}
	prog := &Link{send: p2s, recv: s2p}
	return shield, prog, nil
}

// Seal encrypts and authenticates plaintext, framing it with the sequence
// number used as the GCM nonce. The output is seq(8) || ciphertext.
func (l *Link) Seal(plaintext []byte) []byte {
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], l.sendSeq)
	out := make([]byte, 8, 8+len(plaintext)+l.send.Overhead())
	binary.BigEndian.PutUint64(out, l.sendSeq)
	l.sendSeq++
	return l.send.Seal(out, nonce[:], plaintext, out[:8])
}

// Open authenticates and decrypts a message sealed by the peer, rejecting
// replays and reordering (sequence numbers must strictly increase).
func (l *Link) Open(msg []byte) ([]byte, error) {
	if len(msg) < 8 {
		return nil, ErrShort
	}
	seq := binary.BigEndian.Uint64(msg[:8])
	if seq < l.recvSeq {
		return nil, ErrReplay
	}
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	pt, err := l.recv.Open(nil, nonce[:], msg[8:], msg[:8])
	if err != nil {
		return nil, ErrAuth
	}
	l.recvSeq = seq + 1
	return pt, nil
}
