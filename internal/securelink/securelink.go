// Package securelink implements the authenticated encrypted channel
// between the shield and authorized programmers (§4 of the paper assumes
// such a channel exists; the pairing itself can be in-band or out-of-band).
// It provides AES-256-GCM sealing with directional keys derived from a
// shared pairing secret and sequence numbers for replay protection.
//
// Two extensions support long-lived links (the shieldd session server):
//
//   - A receive window (SetWindow) tolerates bounded reordering instead of
//     requiring strictly increasing sequence numbers, while still rejecting
//     every replay. The default window of 0 keeps the strict behaviour.
//   - A deterministic rekey ratchet (EnableRekey) advances each direction's
//     key every N messages; both ends ratchet from the message sequence
//     number alone, so no extra handshake traffic is needed and a link can
//     outlive the safe lifetime of a single AES-GCM key.
//
// Concurrency: Seal is safe for concurrent use — sequence assignment,
// the send-side rekey ratchet, and encryption happen atomically under an
// internal mutex, so pipelined senders never reuse a nonce or observe a
// torn key state. Open must still be driven by a single goroutine per
// link (the receive window state is not locked); the shieldd mux gives
// each connection exactly one reader. Stats may be read from any
// goroutine at any time.
package securelink

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
)

// Errors returned by Open.
var (
	ErrAuth   = errors.New("securelink: authentication failed")
	ErrReplay = errors.New("securelink: replayed or reordered message")
	ErrShort  = errors.New("securelink: ciphertext too short")
)

// maxWindow bounds the receive window to the bitmask representation:
// winMask bit j tracks the sequence j positions behind the highest
// accepted one, and bit 0 is the highest itself, leaving 63 usable
// look-behind positions.
const maxWindow = 63

// maxEpochSkip bounds how many rekey epochs Open will ratchet forward for
// a single message; a forged far-future sequence number must not buy the
// attacker an unbounded chain of HMAC work.
const maxEpochSkip = 1 << 12

// Link is one directional pair of AEAD states: messages sealed by one end
// open only at the peer, and each direction enforces replay-free sequence
// numbers (strictly increasing by default, or within a bounded reordering
// window when SetWindow is used).
type Link struct {
	// sendMu serializes Seal: sequence assignment, send-side rekeying,
	// and encryption are one atomic step under it.
	sendMu sync.Mutex

	send cipher.AEAD
	recv cipher.AEAD
	// sendKey/recvKey are the current epoch keys, retained so the rekey
	// ratchet can derive the next epoch.
	sendKey []byte
	recvKey []byte

	// stats counters (atomic so Stats can snapshot from any goroutine).
	stMsgsSealed    atomic.Uint64
	stBytesSealed   atomic.Uint64
	stMsgsOpened    atomic.Uint64
	stBytesOpened   atomic.Uint64
	stRekeys        atomic.Uint64
	stReplayDrops   atomic.Uint64
	stLateDrops     atomic.Uint64
	stWindowAccepts atomic.Uint64
	stAuthFails     atomic.Uint64

	sendSeq uint64
	recvSeq uint64 // highest sequence accepted so far + 1

	// window (0 = strict ordering) admits out-of-order sequence numbers up
	// to window positions behind the highest accepted one; winMask bit j
	// records that sequence recvSeq-1-j was already accepted.
	window  uint64
	winMask uint64

	// rekeyEvery (0 = never) rekeys each direction every rekeyEvery
	// messages: epoch(seq) = seq / rekeyEvery.
	rekeyEvery uint64
	sendEpoch  uint64
	recvEpoch  uint64
}

// deriveKey expands the pairing secret into a directional 32-byte key.
func deriveKey(secret []byte, label string) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(label))
	return mac.Sum(nil)
}

// SessionSecret derives an independent pairing secret for one session from
// a long-term master secret and a public per-session nonce (the shieldd
// HELLO nonce). Distinct nonces give cryptographically independent session
// links, so many sessions can share one provisioned master secret.
func SessionSecret(master, nonce []byte) []byte {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte("securelink session v1"))
	mac.Write(nonce)
	return mac.Sum(nil)
}

// ratchetKey derives the next epoch's key from the current one.
func ratchetKey(key []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("securelink rekey v1"))
	return mac.Sum(nil)
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Pair derives the two ends of a shield↔programmer link from a shared
// pairing secret. The first return value belongs to the shield, the second
// to the programmer.
func Pair(secret []byte) (*Link, *Link, error) {
	s2pKey := deriveKey(secret, "shield->programmer")
	p2sKey := deriveKey(secret, "programmer->shield")
	s2p, err := newAEAD(s2pKey)
	if err != nil {
		return nil, nil, err
	}
	p2s, err := newAEAD(p2sKey)
	if err != nil {
		return nil, nil, err
	}
	shield := &Link{send: s2p, recv: p2s, sendKey: s2pKey, recvKey: p2sKey}
	prog := &Link{send: p2s, recv: s2p, sendKey: p2sKey, recvKey: s2pKey}
	return shield, prog, nil
}

// SetWindow sets the receive reordering window: a message whose sequence
// number is up to n positions behind the highest accepted one is still
// accepted if it was never seen before. n is clamped to 63. Call it on
// both ends before any traffic; 0 restores strict ordering.
func (l *Link) SetWindow(n int) {
	if n < 0 {
		n = 0
	}
	if n > maxWindow {
		n = maxWindow
	}
	l.window = uint64(n)
}

// EnableRekey makes both directions of this end ratchet their keys every
// `every` messages. Both ends of the link must enable the same interval
// before any traffic; 0 disables rekeying. The receive window never spans
// a rekey boundary: once a direction advances to a new epoch, messages
// from older epochs are rejected as replays.
func (l *Link) EnableRekey(every uint64) {
	l.rekeyEvery = every
}

// epoch returns the rekey epoch a sequence number belongs to.
func (l *Link) epoch(seq uint64) uint64 {
	if l.rekeyEvery == 0 {
		return 0
	}
	return seq / l.rekeyEvery
}

// Seal encrypts and authenticates plaintext, framing it with the sequence
// number used as the GCM nonce. The output is seq(8) || ciphertext. Seal
// is safe for concurrent use; each call atomically claims the next
// sequence number.
func (l *Link) Seal(plaintext []byte) []byte {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	if e := l.epoch(l.sendSeq); e > l.sendEpoch {
		for l.sendEpoch < e {
			l.sendKey = ratchetKey(l.sendKey)
			l.sendEpoch++
			l.stRekeys.Add(1)
		}
		aead, err := newAEAD(l.sendKey)
		if err != nil {
			panic("securelink: rekey failed: " + err.Error())
		}
		l.send = aead
	}
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], l.sendSeq)
	out := make([]byte, 8, 8+len(plaintext)+l.send.Overhead())
	binary.BigEndian.PutUint64(out, l.sendSeq)
	l.sendSeq++
	sealed := l.send.Seal(out, nonce[:], plaintext, out[:8])
	l.stMsgsSealed.Add(1)
	l.stBytesSealed.Add(uint64(len(sealed)))
	return sealed
}

// Open authenticates and decrypts a message sealed by the peer, rejecting
// replays. With the default window of 0, sequence numbers must strictly
// increase; with SetWindow(n), bounded reordering is tolerated. Failed
// messages never advance any receive state.
func (l *Link) Open(msg []byte) ([]byte, error) {
	if len(msg) < 8 {
		return nil, ErrShort
	}
	seq := binary.BigEndian.Uint64(msg[:8])

	// Replay/window admission check (no state change yet).
	behind := uint64(0) // how far behind the highest accepted seq, 0 = forward
	if l.recvSeq > 0 && seq < l.recvSeq {
		behind = (l.recvSeq - 1) - seq
		if behind > l.window {
			// Too far behind to ever have been tracked: a late arrival
			// (or, with window == 0, any out-of-order delivery).
			l.stLateDrops.Add(1)
			return nil, ErrReplay
		}
		if behind == 0 {
			// seq == highest accepted: always a replay.
			l.stReplayDrops.Add(1)
			return nil, ErrReplay
		}
		if l.winMask>>behind&1 == 1 {
			l.stReplayDrops.Add(1)
			return nil, ErrReplay
		}
	}

	// Resolve the epoch key without committing state.
	aead := l.recv
	e := l.epoch(seq)
	newKey := l.recvKey
	if e != l.recvEpoch {
		if e < l.recvEpoch {
			l.stReplayDrops.Add(1)
			return nil, ErrReplay
		}
		if e-l.recvEpoch > maxEpochSkip {
			l.stAuthFails.Add(1)
			return nil, ErrAuth
		}
		for k := l.recvEpoch; k < e; k++ {
			newKey = ratchetKey(newKey)
		}
		var err error
		aead, err = newAEAD(newKey)
		if err != nil {
			l.stAuthFails.Add(1)
			return nil, ErrAuth
		}
	}

	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	pt, err := aead.Open(nil, nonce[:], msg[8:], msg[:8])
	if err != nil {
		l.stAuthFails.Add(1)
		return nil, ErrAuth
	}
	l.stMsgsOpened.Add(1)
	l.stBytesOpened.Add(uint64(len(msg)))

	// Commit: epoch advance wipes the window (it never spans epochs).
	if e > l.recvEpoch {
		l.stRekeys.Add(e - l.recvEpoch)
		l.recvKey = newKey
		l.recvEpoch = e
		l.recv = aead
		l.recvSeq = seq + 1
		l.winMask = 1
		return pt, nil
	}
	if behind > 0 {
		l.winMask |= 1 << behind
		l.stWindowAccepts.Add(1)
		return pt, nil
	}
	shift := seq + 1 - l.recvSeq // ≥ 1: new highest sequence
	if l.recvSeq == 0 || shift >= 64 {
		l.winMask = 1
	} else {
		l.winMask = l.winMask<<shift | 1
	}
	l.recvSeq = seq + 1
	return pt, nil
}

// Stats is a point-in-time snapshot of a link's traffic counters. Bytes
// are wire bytes (sealed frames including the sequence prefix and GCM
// tag); Rekeys counts epoch advances in both directions of this end.
//
// The three receive-window counters tell the loss story of an unreliable
// transport apart: WindowAccepts counts messages that arrived out of
// order but inside the window (reordering the window absorbed),
// ReplayDrops counts duplicates of messages already accepted (network
// dups and replays, including old-epoch arrivals), and LateDrops counts
// messages that fell behind the window entirely before arriving.
type Stats struct {
	MsgsSealed    uint64
	BytesSealed   uint64
	MsgsOpened    uint64
	BytesOpened   uint64
	Rekeys        uint64
	ReplayDrops   uint64
	LateDrops     uint64
	WindowAccepts uint64
	AuthFails     uint64
}

// Stats snapshots the link's counters. Safe to call from any goroutine.
func (l *Link) Stats() Stats {
	return Stats{
		MsgsSealed:    l.stMsgsSealed.Load(),
		BytesSealed:   l.stBytesSealed.Load(),
		MsgsOpened:    l.stMsgsOpened.Load(),
		BytesOpened:   l.stBytesOpened.Load(),
		Rekeys:        l.stRekeys.Load(),
		ReplayDrops:   l.stReplayDrops.Load(),
		LateDrops:     l.stLateDrops.Load(),
		WindowAccepts: l.stWindowAccepts.Load(),
		AuthFails:     l.stAuthFails.Load(),
	}
}
