package securelink

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"time"
)

// CookieLen is the length of a minted handshake cookie: a truncated
// HMAC-SHA256. 16 bytes (128 bits) keeps forgery negligible while
// keeping the HELLO retry small.
const CookieLen = 16

// CookieSource mints and verifies stateless handshake cookies: a keyed
// MAC over the client's transport address and HELLO nonce under a
// rotating server secret. The server keeps no per-client state — a valid
// cookie proves only that the sender can receive datagrams at the source
// address it claims, which is exactly the property a spoofed-source
// flood lacks.
//
// Secrets rotate on a fixed interval (lazily, on use); a cookie minted
// under the previous secret still verifies, so an honest client's
// echo never races a rotation. Two intervals bound a cookie's life.
type CookieSource struct {
	mu       sync.Mutex
	current  [32]byte
	previous [32]byte
	hasPrev  bool
	interval time.Duration
	nextRot  time.Time
	now      func() time.Time // test hook; time.Now outside tests
}

// NewCookieSource creates a source whose secret rotates every interval
// (0 or negative disables time-based rotation; Rotate still works).
func NewCookieSource(interval time.Duration) (*CookieSource, error) {
	s := &CookieSource{interval: interval, now: time.Now}
	if _, err := rand.Read(s.current[:]); err != nil {
		return nil, err
	}
	if interval > 0 {
		s.nextRot = s.now().Add(interval)
	}
	return s, nil
}

// Rotate retires the current secret to the previous slot and installs a
// fresh one. Cookies minted under the retired secret keep verifying
// until the next rotation.
func (s *CookieSource) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rotateLocked()
}

func (s *CookieSource) rotateLocked() error {
	s.previous = s.current
	s.hasPrev = true
	if _, err := rand.Read(s.current[:]); err != nil {
		return err
	}
	if s.interval > 0 {
		s.nextRot = s.now().Add(s.interval)
	}
	return nil
}

// maybeRotateLocked applies every time-based rotation that has come due
// since the last use, not just one: after a quiet period spanning two or
// more intervals, a single rotation would park the pre-gap secret in the
// previous slot and an arbitrarily old cookie would still verify,
// breaking the "two intervals bound a cookie's life" contract. Two
// rotations retire every pre-gap secret, so the count is capped there.
// A rotation failure (exhausted entropy source) keeps the old secret —
// stale cookies are a smaller hazard than an unkeyed one.
func (s *CookieSource) maybeRotateLocked() {
	due := rotationsDue(s.now(), s.nextRot, s.interval)
	for i := 0; i < due; i++ {
		if s.rotateLocked() != nil {
			return
		}
	}
}

// rotationsDue returns how many rotations a lazily-rotated secret pair
// owes at time now, given the next scheduled rotation and the interval:
// zero before the deadline, otherwise one per elapsed interval since it,
// capped at two — both slots hold fresh secrets after two, so older
// epochs are unrepresentable and further rotations would only burn
// entropy.
func rotationsDue(now, nextRot time.Time, interval time.Duration) int {
	if interval <= 0 || now.Before(nextRot) {
		return 0
	}
	due := 1 + int(now.Sub(nextRot)/interval)
	if due > 2 {
		due = 2
	}
	return due
}

// cookieMAC computes the truncated cookie MAC for (addr, nonce) under
// key. The address is length-prefixed so (addr, nonce) pairs cannot
// collide across a boundary shift.
func cookieMAC(key []byte, addr string, nonce []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte("securelink cookie v1"))
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(addr)))
	mac.Write(n[:])
	mac.Write([]byte(addr))
	mac.Write(nonce)
	return mac.Sum(nil)[:CookieLen]
}

// Mint returns the cookie for a HELLO from addr carrying nonce.
func (s *CookieSource) Mint(addr string, nonce []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeRotateLocked()
	return cookieMAC(s.current[:], addr, nonce)
}

// Verify reports whether cookie is valid for (addr, nonce) under the
// current or previous secret. Constant-time per comparison.
func (s *CookieSource) Verify(addr string, nonce, cookie []byte) bool {
	if len(cookie) != CookieLen {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maybeRotateLocked()
	if hmac.Equal(cookie, cookieMAC(s.current[:], addr, nonce)) {
		return true
	}
	return s.hasPrev && hmac.Equal(cookie, cookieMAC(s.previous[:], addr, nonce))
}
