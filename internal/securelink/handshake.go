// Handshake v2 key schedule: the Noise-style AKE primitives behind wire
// protocol v4 (shieldd HELLO → CHALLENGE2 → sealed HELLO-ACK).
//
// The schedule is a chaining-key/transcript-hash pair in the style of
// the Noise framework: every handshake message's bytes are mixed into
// the transcript hash, and every secret input — the provisioned master
// PSK, the X25519 ephemeral-ephemeral shared secret, or a resumption
// secret — is mixed into the chaining key with an HKDF extract step.
// The final session secret binds both, so:
//
//   - Forward secrecy: a later compromise of the master PSK cannot
//     reconstruct the session secret of a recorded full handshake (the
//     ephemeral DH private keys are gone), unlike the v1–v3
//     SessionSecret derivation, which is a pure function of the master
//     and two public nonces.
//   - Transcript binding: an active attacker who rewrites any handshake
//     field (key share, nonce, announced version, scenario options)
//     desynchronizes the two ends' transcripts, so the sealed HELLO-ACK
//     fails to open and the handshake dies instead of completing with
//     attacker-chosen parameters.
//   - PSK authentication: without the master, an active
//     man-in-the-middle cannot compute the chaining key even though it
//     can substitute its own ephemerals.
//
// Resumption: SessionSecret/ResumptionSecret are both expanded from the
// final (ck, h) under distinct labels. The resumption secret seeds the
// next handshake's key schedule in place of a fresh DH — it was derived
// from a DH-bearing session, so resumed sessions inherit forward
// secrecy against master compromise. TicketSource wraps resumption
// secrets into single-use sealed tickets so the server stays stateless
// about them. HKDF is implemented directly on HMAC-SHA256 (RFC 5869,
// single-block output) — this repo takes no dependencies.
package securelink

import (
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"
	"time"
)

// HandshakeLabelV4 is the domain-separation label of the wire protocol
// v4 handshake; both ends must start their key schedule from it.
const HandshakeLabelV4 = "heartshield handshake v4"

// KeyShareLen is the length of an X25519 key share on the wire.
const KeyShareLen = 32

// hkdfExtract is RFC 5869 extract: PRK = HMAC-SHA256(salt, ikm).
func hkdfExtract(salt, ikm []byte) [32]byte {
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// hkdfExpand32 is RFC 5869 expand truncated to one block:
// T(1) = HMAC-SHA256(prk, info || 0x01).
func hkdfExpand32(prk [32]byte, info string) []byte {
	mac := hmac.New(sha256.New, prk[:])
	mac.Write([]byte(info))
	mac.Write([]byte{1})
	return mac.Sum(nil)
}

// Handshake is the v4 key schedule state: a chaining key ck absorbing
// every secret input and a transcript hash h absorbing every handshake
// message. It is not safe for concurrent use; each handshake owns one.
type Handshake struct {
	ck [32]byte
	h  [32]byte
}

// NewHandshake starts a key schedule under a protocol label. Both ends
// must mix the same messages and keys in the same order.
func NewHandshake(label string) *Handshake {
	hs := &Handshake{}
	hs.h = sha256.Sum256([]byte(label))
	hs.ck = hs.h
	return hs
}

// MixHash absorbs one handshake message's bytes into the transcript:
// h = SHA-256(h || data).
func (hs *Handshake) MixHash(data []byte) {
	d := sha256.New()
	d.Write(hs.h[:])
	d.Write(data)
	copy(hs.h[:], d.Sum(nil))
}

// MixKey absorbs one secret input (PSK, DH shared secret, resumption
// secret) into the chaining key: ck = HKDF-Extract(ck, ikm).
func (hs *Handshake) MixKey(ikm []byte) {
	hs.ck = hkdfExtract(hs.ck[:], ikm)
}

// SessionSecret derives the session pairing secret from the final
// schedule state; feed it to Pair. The transcript hash is extracted into
// the derivation, so any message tampering yields disagreeing keys.
func (hs *Handshake) SessionSecret() []byte {
	return hkdfExpand32(hkdfExtract(hs.ck[:], hs.h[:]), "session")
}

// ResumptionSecret derives the secret a resumed handshake mixes in place
// of a fresh DH. Distinct label, so it never equals the session secret.
func (hs *Handshake) ResumptionSecret() []byte {
	return hkdfExpand32(hkdfExtract(hs.ck[:], hs.h[:]), "resumption")
}

// Ephemeral is one handshake's X25519 ephemeral key pair.
type Ephemeral struct {
	priv *ecdh.PrivateKey
}

// NewEphemeral generates a fresh X25519 key pair.
func NewEphemeral() (*Ephemeral, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Ephemeral{priv: priv}, nil
}

// Public returns the 32-byte public key share for the wire.
func (e *Ephemeral) Public() []byte {
	return e.priv.PublicKey().Bytes()
}

// Shared computes the X25519 shared secret with the peer's key share.
// Malformed shares and low-order points (all-zero shared secrets) are
// rejected by crypto/ecdh.
func (e *Ephemeral) Shared(peerShare []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerShare)
	if err != nil {
		return nil, err
	}
	return e.priv.ECDH(pub)
}

// --- resumption tickets -------------------------------------------------

// Ticket layout: epoch(1) || nonce(12) || AES-256-GCM(rms(32) ||
// expiryUnixNano(8) || addr) with the epoch byte as AAD. The ticket is
// opaque to the client; only the issuing server can open it.
const (
	ticketNonceLen = 12
	ticketRMSLen   = 32
	// maxUsedTickets bounds the single-use replay filter; beyond it the
	// oldest entries are evicted (tickets also expire on their own, so
	// the filter only has to span a lifetime of mints).
	maxUsedTickets = 8192
)

// ErrTicket reports a resumption ticket that failed to mint or parse.
var ErrTicket = errors.New("securelink: invalid resumption ticket")

// TicketSource mints and redeems single-use session-resumption tickets:
// a resumption secret sealed under a rotating server key, carrying its
// expiry and the transport address it was issued to. Like CookieSource,
// secrets rotate lazily on use and the previous epoch's tickets keep
// verifying, so a ticket's life is bounded by min(lifetime, two
// rotation intervals). Redeem is single-use (a bounded replay filter),
// so an eavesdropper replaying a harvested ticket cannot even start a
// second resumed handshake — and could not finish one regardless,
// because the resumption secret inside never travels in plaintext.
type TicketSource struct {
	mu        sync.Mutex
	current   cipher.AEAD
	previous  cipher.AEAD
	curEpoch  uint8
	hasPrev   bool
	interval  time.Duration
	lifetime  time.Duration
	nextRot   time.Time
	used      map[string]struct{}
	usedOrder []string
	now       func() time.Time // test hook; time.Now outside tests
}

// NewTicketSource creates a source whose sealing key rotates every
// interval (0 or negative disables time-based rotation) and whose
// tickets expire after lifetime.
func NewTicketSource(interval, lifetime time.Duration) (*TicketSource, error) {
	t := &TicketSource{
		interval: interval,
		lifetime: lifetime,
		used:     make(map[string]struct{}),
		now:      time.Now,
	}
	aead, err := newTicketAEAD()
	if err != nil {
		return nil, err
	}
	t.current = aead
	if interval > 0 {
		t.nextRot = t.now().Add(interval)
	}
	return t, nil
}

func newTicketAEAD() (cipher.AEAD, error) {
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		return nil, err
	}
	return newAEAD(key[:])
}

func (t *TicketSource) rotateLocked() error {
	aead, err := newTicketAEAD()
	if err != nil {
		return err
	}
	t.previous = t.current
	t.hasPrev = true
	t.current = aead
	t.curEpoch++
	if t.interval > 0 {
		t.nextRot = t.now().Add(t.interval)
	}
	return nil
}

// maybeRotateLocked applies every due time-based rotation, exactly like
// CookieSource: after a quiet period spanning two or more intervals,
// both key slots must be fresher than the gap, or a ticket minted
// before it would outlive its two-interval bound.
func (t *TicketSource) maybeRotateLocked() {
	due := rotationsDue(t.now(), t.nextRot, t.interval)
	for i := 0; i < due; i++ {
		if t.rotateLocked() != nil {
			return // keep the old key; stale beats unkeyed
		}
	}
}

// Mint seals a resumption secret into a ticket bound to the issuing
// transport address addr, expiring after the source's lifetime.
func (t *TicketSource) Mint(rms []byte, addr string) ([]byte, error) {
	if len(rms) != ticketRMSLen {
		return nil, ErrTicket
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maybeRotateLocked()
	ticket := make([]byte, 1+ticketNonceLen, 1+ticketNonceLen+ticketRMSLen+8+len(addr)+16)
	ticket[0] = t.curEpoch
	if _, err := rand.Read(ticket[1 : 1+ticketNonceLen]); err != nil {
		return nil, err
	}
	pt := make([]byte, 0, ticketRMSLen+8+len(addr))
	pt = append(pt, rms...)
	pt = binary.BigEndian.AppendUint64(pt, uint64(t.now().Add(t.lifetime).UnixNano()))
	pt = append(pt, addr...)
	return t.current.Seal(ticket, ticket[1:1+ticketNonceLen], pt, ticket[:1]), nil
}

// openLocked decrypts a ticket under whichever epoch key its epoch byte
// names, returning the resumption secret and the issuing address.
// Expired tickets and tickets from retired epochs fail.
func (t *TicketSource) openLocked(ticket []byte) (rms []byte, addr string, ok bool) {
	if len(ticket) < 1+ticketNonceLen+ticketRMSLen+8+16 {
		return nil, "", false
	}
	var aead cipher.AEAD
	switch ticket[0] {
	case t.curEpoch:
		aead = t.current
	case t.curEpoch - 1:
		if !t.hasPrev {
			return nil, "", false
		}
		aead = t.previous
	default:
		return nil, "", false
	}
	pt, err := aead.Open(nil, ticket[1:1+ticketNonceLen], ticket[1+ticketNonceLen:], ticket[:1])
	if err != nil {
		return nil, "", false
	}
	if len(pt) < ticketRMSLen+8 {
		return nil, "", false
	}
	expiry := int64(binary.BigEndian.Uint64(pt[ticketRMSLen:]))
	if t.now().UnixNano() >= expiry {
		return nil, "", false
	}
	return pt[:ticketRMSLen], string(pt[ticketRMSLen+8:]), true
}

// Peek reports whether a ticket would redeem for a handshake from addr:
// valid, unexpired, not yet used, and issued to exactly that transport
// address. It consumes nothing — the datagram admission gate uses it as
// a stateless cookie substitute (the ticket proves a prior completed
// handshake from the same address), and the later Redeem still decides.
func (t *TicketSource) Peek(ticket []byte, addr string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maybeRotateLocked()
	if _, used := t.used[string(ticket)]; used {
		return false
	}
	rms, issued, ok := t.openLocked(ticket)
	if ok {
		wipe(rms)
	}
	return ok && issued == addr
}

// Redeem opens a ticket and consumes it: a second Redeem of the same
// bytes fails. Returns the resumption secret the next key schedule
// should mix.
func (t *TicketSource) Redeem(ticket []byte) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maybeRotateLocked()
	if _, used := t.used[string(ticket)]; used {
		return nil, false
	}
	rms, _, ok := t.openLocked(ticket)
	if !ok {
		return nil, false
	}
	key := string(ticket)
	t.used[key] = struct{}{}
	t.usedOrder = append(t.usedOrder, key)
	if len(t.usedOrder) > maxUsedTickets {
		delete(t.used, t.usedOrder[0])
		t.usedOrder = t.usedOrder[1:]
	}
	return rms, true
}

func wipe(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
