package securelink_test

import (
	"errors"
	"testing"

	"heartshield/internal/securelink"
)

// windowStats is the slice of Stats the window tests assert on.
type windowStats struct {
	WindowAccepts uint64
	ReplayDrops   uint64
	LateDrops     uint64
	Rekeys        uint64
}

// step delivers sealed frame Seq (by seal order) and expects Err.
type step struct {
	Seq int
	Err error // nil = must open
}

// TestWindowEdgeCases drives the receive window and rekey ratchet
// through the edge geometries a lossy datagram transport produces,
// checking both the accept/reject decision and the Stats counters that
// make the behavior observable from shieldd metrics.
func TestWindowEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		window     int
		rekeyEvery uint64
		seal       int // frames sealed up front, seq 0..seal-1
		script     []step
		want       windowStats
	}{
		{
			// The winMask shift saturates when a forward jump exceeds 64
			// positions (the mask's width): the mask must reset cleanly,
			// old sequences must die as late arrivals, and near sequences
			// must still window-accept afterwards.
			name:   "mask-shift-wraparound-on-big-jump",
			window: 63,
			seal:   101,
			script: []step{
				{Seq: 0, Err: nil},
				{Seq: 100, Err: nil},                 // shift 100 ≥ 64: mask reset
				{Seq: 0, Err: securelink.ErrReplay},  // 100 behind: late
				{Seq: 36, Err: securelink.ErrReplay}, // 64 behind: just outside
				{Seq: 37, Err: nil},                  // exactly 63 behind: boundary accept
				{Seq: 99, Err: nil},                  // 1 behind: window accept
				{Seq: 99, Err: securelink.ErrReplay}, // now a duplicate
			},
			want: windowStats{WindowAccepts: 2, ReplayDrops: 1, LateDrops: 2},
		},
		{
			// A reorder of exactly window size is the inclusive boundary:
			// the oldest admissible sequence arrives last and every
			// intermediate one still lands.
			name:   "exactly-window-sized-reorder",
			window: 4,
			seal:   6,
			script: []step{
				{Seq: 4, Err: nil},
				{Seq: 0, Err: nil}, // 4 behind = window: accepted
				{Seq: 1, Err: nil},
				{Seq: 2, Err: nil},
				{Seq: 3, Err: nil},
				{Seq: 5, Err: nil},
			},
			want: windowStats{WindowAccepts: 4},
		},
		{
			// A duplicate of a frame that was itself accepted out of order
			// must die on the bitmask, not on the highest-seq check.
			name:   "duplicate-after-windowed-accept",
			window: 8,
			seal:   3,
			script: []step{
				{Seq: 2, Err: nil},
				{Seq: 0, Err: nil},
				{Seq: 0, Err: securelink.ErrReplay},
				{Seq: 1, Err: nil},
				{Seq: 1, Err: securelink.ErrReplay},
				{Seq: 2, Err: securelink.ErrReplay},
			},
			want: windowStats{WindowAccepts: 2, ReplayDrops: 3},
		},
		{
			// Loss across a rekey boundary: the dropped frame's late
			// arrival lands in a retired epoch and must be rejected even
			// though it is comfortably inside the window, because the
			// window never spans epochs.
			name:       "rekey-epoch-boundary-under-loss",
			window:     8,
			rekeyEvery: 4,
			seal:       9,
			script: []step{
				{Seq: 0, Err: nil},
				{Seq: 1, Err: nil},
				{Seq: 2, Err: nil},
				// seq 3 dropped by the network; seq 4 opens epoch 1.
				{Seq: 4, Err: nil},
				{Seq: 3, Err: securelink.ErrReplay}, // late, epoch 0: dead
				{Seq: 5, Err: nil},
				{Seq: 6, Err: nil},
				{Seq: 7, Err: nil},
				{Seq: 8, Err: nil}, // epoch 2
			},
			want: windowStats{ReplayDrops: 1, Rekeys: 2},
		},
		{
			// Reordering WITHIN the new epoch still window-accepts after a
			// ratchet, while anything from the old epoch stays dead.
			name:       "reorder-inside-new-epoch",
			window:     8,
			rekeyEvery: 4,
			seal:       8,
			script: []step{
				{Seq: 0, Err: nil},
				{Seq: 1, Err: nil},
				{Seq: 2, Err: nil},
				{Seq: 5, Err: nil},                  // epoch 1 (3 and 4 outstanding)
				{Seq: 4, Err: nil},                  // same epoch, 1 behind: accepted
				{Seq: 3, Err: securelink.ErrReplay}, // epoch 0: dead
				{Seq: 6, Err: nil},
				{Seq: 7, Err: nil},
			},
			want: windowStats{WindowAccepts: 1, ReplayDrops: 1, Rekeys: 1},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			shield, prog, err := securelink.Pair([]byte("window-edge-secret"))
			if err != nil {
				t.Fatal(err)
			}
			shield.SetWindow(tc.window)
			if tc.rekeyEvery > 0 {
				shield.EnableRekey(tc.rekeyEvery)
				prog.EnableRekey(tc.rekeyEvery)
			}
			sealed := make([][]byte, tc.seal)
			for i := range sealed {
				sealed[i] = prog.Seal([]byte{byte(i)})
			}
			for i, s := range tc.script {
				_, err := shield.Open(sealed[s.Seq])
				if s.Err == nil && err != nil {
					t.Fatalf("step %d (seq %d): open failed: %v", i, s.Seq, err)
				}
				if s.Err != nil && !errors.Is(err, s.Err) {
					t.Fatalf("step %d (seq %d): err = %v, want %v", i, s.Seq, err, s.Err)
				}
			}
			st := shield.Stats()
			got := windowStats{
				WindowAccepts: st.WindowAccepts,
				ReplayDrops:   st.ReplayDrops,
				LateDrops:     st.LateDrops,
				Rekeys:        st.Rekeys,
			}
			if got != tc.want {
				t.Fatalf("stats = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestStrictModeCountsLateDrops pins the counter split in strict mode:
// with no window, any out-of-order arrival is "late" (it was never
// tracked), while an exact duplicate is a replay.
func TestStrictModeCountsLateDrops(t *testing.T) {
	shield, prog, err := securelink.Pair([]byte("strict-counters"))
	if err != nil {
		t.Fatal(err)
	}
	m0 := prog.Seal([]byte("m0"))
	m1 := prog.Seal([]byte("m1"))
	if _, err := shield.Open(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := shield.Open(m0); !errors.Is(err, securelink.ErrReplay) {
		t.Fatalf("out-of-order err = %v", err)
	}
	if _, err := shield.Open(m1); !errors.Is(err, securelink.ErrReplay) {
		t.Fatalf("duplicate err = %v", err)
	}
	st := shield.Stats()
	if st.LateDrops != 1 || st.ReplayDrops != 1 || st.WindowAccepts != 0 {
		t.Fatalf("stats = %+v, want 1 late, 1 replay, 0 window accepts", st)
	}
}
