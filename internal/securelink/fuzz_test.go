package securelink

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// fuzzSecret keeps the fuzz corpus meaningful across runs: the seed
// entries below were sealed under this pairing.
var fuzzSecret = []byte("fuzz-pairing-secret")

// sealForFuzz reproduces the deterministic sealed frames the corpus is
// built from: prog→shield messages with sequence numbers 0..n-1.
func sealForFuzz(n int) [][]byte {
	_, prog, err := Pair(fuzzSecret)
	if err != nil {
		panic(err)
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = prog.Seal([]byte("fuzz-payload"))
	}
	return out
}

// FuzzSecurelinkOpen drives Open with truncations, bit flips, and
// replayed/reordered sequence numbers, across the strict, windowed, and
// rekeying configurations. Open must never panic, must never accept a
// frame that was not sealed by the peer (GCM forgery aside), and a failed
// open must never poison the link for the legitimate frame that follows.
func FuzzSecurelinkOpen(f *testing.F) {
	sealed := sealForFuzz(4)
	for _, s := range sealed {
		f.Add(s)
		// Truncation and bit-flip variants of real frames.
		f.Add(s[:len(s)/2])
		flipped := append([]byte(nil), s...)
		flipped[len(flipped)-1] ^= 1
		f.Add(flipped)
	}
	// Replay-window and epoch-boundary probes: forged headers around the
	// interesting sequence numbers.
	for _, seq := range []uint64{0, 1, 7, 8, 9, 1 << 20, 1 << 62} {
		probe := make([]byte, 8+16)
		binary.BigEndian.PutUint64(probe, seq)
		f.Add(probe)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, mode := range []struct {
			window int
			rekey  uint64
		}{{0, 0}, {8, 0}, {8, 4}} {
			shield, prog, err := Pair(fuzzSecret)
			if err != nil {
				t.Fatal(err)
			}
			shield.SetWindow(mode.window)
			shield.EnableRekey(mode.rekey)
			prog.SetWindow(mode.window)
			prog.EnableRekey(mode.rekey)

			// Advance the link so replays of the corpus frames are live
			// possibilities: deliver frames 0 and 2 out of the first 3.
			pre := make([][]byte, 3)
			for i := range pre {
				pre[i] = prog.Seal([]byte("fuzz-payload"))
			}
			if _, err := shield.Open(pre[0]); err != nil {
				t.Fatalf("setup open: %v", err)
			}
			if _, err := shield.Open(pre[2]); err != nil {
				t.Fatalf("setup open: %v", err)
			}

			pt, err := shield.Open(raw)
			if err == nil {
				// The only frames that can legitimately open are the ones
				// this link's peer sealed; all carry the fixed payload.
				if !bytes.Equal(pt, []byte("fuzz-payload")) {
					t.Fatalf("open accepted forged plaintext %q", pt)
				}
			}

			// Whatever the fuzzer delivered, the link must still accept
			// the peer's next legitimate frame. Skip two sequence numbers
			// first: a corpus frame (seqs 0..3 under this secret) that
			// opened above consumed its own seq, which is not poisoning.
			prog.Seal(nil)
			prog.Seal(nil)
			if _, err := shield.Open(prog.Seal([]byte("after"))); err != nil {
				t.Fatalf("window=%d rekey=%d: link poisoned after fuzz input: %v",
					mode.window, mode.rekey, err)
			}
		}
	})
}

// FuzzTicketRedeem drives TicketSource.Peek/Redeem with arbitrary
// ticket bytes. Neither may panic or over-allocate, garbage must never
// redeem, and a failed attempt must not consume or corrupt the one
// legitimate outstanding ticket.
func FuzzTicketRedeem(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 13))
	f.Add(make([]byte, 69))
	long := make([]byte, 96)
	for i := range long {
		long[i] = byte(i * 7)
	}
	f.Add(long)
	lying := append([]byte{1}, make([]byte, 80)...)
	f.Add(lying)

	f.Fuzz(func(t *testing.T, raw []byte) {
		ts, err := NewTicketSource(0, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		rms := bytes.Repeat([]byte{0x42}, 32)
		real, err := ts.Mint(rms, "fuzz-addr")
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(raw, real) {
			return // the fuzzer cannot guess a fresh random ticket, but be safe
		}
		ts.Peek(raw, "fuzz-addr")
		if got, ok := ts.Redeem(raw); ok {
			t.Fatalf("garbage ticket redeemed for secret %x", got)
		}
		if got, ok := ts.Redeem(real); !ok || !bytes.Equal(got, rms) {
			t.Fatal("legitimate ticket no longer redeems after fuzz input")
		}
	})
}
