package securelink

import (
	"bytes"
	"testing"
	"time"
)

func TestCookieMintVerify(t *testing.T) {
	s, err := NewCookieSource(0)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("hello-nonce-0123")
	c := s.Mint("10.0.0.1:4040", nonce)
	if len(c) != CookieLen {
		t.Fatalf("cookie length %d, want %d", len(c), CookieLen)
	}
	if !s.Verify("10.0.0.1:4040", nonce, c) {
		t.Fatal("freshly minted cookie does not verify")
	}
	// A cookie is bound to both the address and the nonce.
	if s.Verify("10.0.0.2:4040", nonce, c) {
		t.Fatal("cookie verified for a different address")
	}
	if s.Verify("10.0.0.1:4040", []byte("other-nonce-0123"), c) {
		t.Fatal("cookie verified for a different nonce")
	}
	// Bit-flips and wrong lengths are refused.
	bad := append([]byte(nil), c...)
	bad[0] ^= 0x01
	if s.Verify("10.0.0.1:4040", nonce, bad) {
		t.Fatal("corrupted cookie verified")
	}
	if s.Verify("10.0.0.1:4040", nonce, c[:CookieLen-1]) {
		t.Fatal("short cookie verified")
	}
	if s.Verify("10.0.0.1:4040", nonce, nil) {
		t.Fatal("empty cookie verified")
	}
}

// A cookie survives exactly one rotation: the previous secret still
// verifies, two rotations back does not.
func TestCookieSurvivesOneRotation(t *testing.T) {
	s, err := NewCookieSource(0)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("rotation-nonce-1")
	c := s.Mint("addr", nonce)
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if !s.Verify("addr", nonce, c) {
		t.Fatal("cookie minted one rotation ago does not verify")
	}
	fresh := s.Mint("addr", nonce)
	if bytes.Equal(fresh, c) {
		t.Fatal("rotation did not change the minting secret")
	}
	if err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	if s.Verify("addr", nonce, c) {
		t.Fatal("cookie minted two rotations ago still verifies")
	}
	if !s.Verify("addr", nonce, fresh) {
		t.Fatal("previous-epoch cookie does not verify")
	}
}

// Time-based rotation happens lazily on use once the interval elapses.
func TestCookieTimedRotation(t *testing.T) {
	s, err := NewCookieSource(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1_700_000_000, 0)
	s.now = func() time.Time { return clock }
	s.nextRot = clock.Add(time.Hour)

	nonce := []byte("timed-nonce-0123")
	c := s.Mint("addr", nonce)

	clock = clock.Add(61 * time.Minute) // one rotation due
	if !s.Verify("addr", nonce, c) {
		t.Fatal("cookie did not survive its first timed rotation")
	}
	c2 := s.Mint("addr", nonce)

	clock = clock.Add(61 * time.Minute) // second rotation due
	if s.Verify("addr", nonce, c) {
		t.Fatal("cookie survived two timed rotations")
	}
	if !s.Verify("addr", nonce, c2) {
		t.Fatal("one-interval-old cookie refused")
	}
}

// Regression: a quiet period spanning several rotation intervals must
// retire a pre-gap cookie. The old maybeRotateLocked performed at most
// one rotation per use regardless of elapsed time, so the ancient
// secret landed in the previous slot and the cookie still verified.
func TestCookieQuietPeriodRetiresOldSecrets(t *testing.T) {
	s, err := NewCookieSource(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1_700_000_000, 0)
	s.now = func() time.Time { return clock }
	s.nextRot = clock.Add(time.Hour)

	nonce := []byte("quiet-nonce-0123")
	c := s.Mint("addr", nonce)

	// 2.5 intervals of silence: two rotations are due, so both secret
	// slots postdate the mint and the cookie must be dead.
	clock = clock.Add(150 * time.Minute)
	if s.Verify("addr", nonce, c) {
		t.Fatal("cookie minted before a two-interval quiet period still verifies")
	}

	// 1.5 intervals of silence: only one rotation due, the mint-time
	// secret sits in the previous slot, the cookie must still verify.
	c2 := s.Mint("addr", nonce)
	clock = clock.Add(90 * time.Minute)
	if !s.Verify("addr", nonce, c2) {
		t.Fatal("cookie minted within one interval of the quiet period was retired")
	}
}

func TestRotationsDue(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	next := base.Add(time.Hour)
	cases := []struct {
		elapsed time.Duration
		want    int
	}{
		{0, 0},
		{59 * time.Minute, 0},
		{60 * time.Minute, 1},
		{90 * time.Minute, 1},
		{120 * time.Minute, 2},
		{150 * time.Minute, 2},
		{24 * time.Hour, 2},
	}
	for _, c := range cases {
		if got := rotationsDue(base.Add(c.elapsed), next, time.Hour); got != c.want {
			t.Errorf("rotationsDue(+%v) = %d, want %d", c.elapsed, got, c.want)
		}
	}
	if got := rotationsDue(base.Add(time.Hour), next, 0); got != 0 {
		t.Errorf("rotationsDue with disabled interval = %d, want 0", got)
	}
}

// Distinct sources never accept each other's cookies (independent
// random secrets).
func TestCookieSourcesAreIndependent(t *testing.T) {
	a, err := NewCookieSource(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCookieSource(0)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("cross-nonce-0123")
	if b.Verify("addr", nonce, a.Mint("addr", nonce)) {
		t.Fatal("cookie from one source verified by another")
	}
}
