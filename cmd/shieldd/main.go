// Command shieldd runs the concurrent shield session server: a long-lived
// daemon serving protected exchanges (pipelined and batched), attack
// trials, and experiment runs over the securelink-sealed wire protocol,
// one recycled testbed scenario per active session.
//
// Usage:
//
//	shieldd -listen :7700 -secret swordfish
//	shieldd -listen 127.0.0.1:7700 -secret-file /etc/shieldd.secret -max-sessions 128
//	shieldd -listen :7700 -secret swordfish -metrics 30s -idle-timeout 2m
//	shieldd -listen :7700 -listen-udp :7701 -secret swordfish
//	shieldd -listen :7700 -secret swordfish -admission-wait -1ns -handshake-rate 50 -max-inflight-global 256
//
// -listen-udp additionally serves the datagram transport (wire v2 with
// client retransmission and server-side request dedup) on a UDP socket,
// alongside TCP. The admission flags bound overload: -admission-wait
// caps how long a handshake may queue for a session slot (negative
// sheds immediately), -handshake-rate/-handshake-burst meter datagram
// handshakes per peer, and -max-inflight-global sheds requests beyond a
// server-wide work bound; shed work is answered with BUSY and the
// -busy-retry-after hint.
//
// Drive it with cmd/shieldsim's client mode:
//
//	shieldsim -server 127.0.0.1:7700 -secret swordfish -run fig7 -quick
//	shieldsim -server 127.0.0.1:7700 -secret swordfish -batch 64
//	shieldsim -server 127.0.0.1:7701 -transport udp -secret swordfish -batch 64
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"heartshield"
)

func main() {
	var (
		listen      = flag.String("listen", ":7700", "TCP listen address")
		listenUDP   = flag.String("listen-udp", "", "also serve the datagram transport on this UDP address")
		secret      = flag.String("secret", "", "master pairing secret (shared with clients)")
		secretFile  = flag.String("secret-file", "", "file holding the master pairing secret")
		maxSessions = flag.Int("max-sessions", 64, "concurrently active session bound")
		expWorkers  = flag.Int("exp-workers", runtime.NumCPU(), "worker cap for remotely requested experiments")
		maxExtra    = flag.Int("max-extra-imds", 8, "largest multi-IMD batch a session may request")
		inFlight    = flag.Int("inflight", 16, "pipelined in-flight request window per session")
		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "reap sessions idle this long (0 disables)")
		metricsEach = flag.Duration("metrics", 0, "dump server metrics at this interval (0 disables)")

		admissionWait  = flag.Duration("admission-wait", 0, "how long a handshake may wait for a session slot before BUSY (0 queues forever, negative sheds immediately)")
		handshakeRate  = flag.Float64("handshake-rate", 0, "per-peer sustained datagram handshakes per second (0 disables rate limiting)")
		handshakeBurst = flag.Int("handshake-burst", 0, "per-peer handshake burst on top of -handshake-rate")
		maxInFlight    = flag.Int("max-inflight-global", 0, "server-wide in-flight work bound; excess requests get BUSY (0 disables)")
		busyRetryAfter = flag.Duration("busy-retry-after", 0, "retry-after hint carried in BUSY replies (0 = default)")
	)
	flag.Parse()

	key := []byte(*secret)
	if *secretFile != "" {
		b, err := os.ReadFile(*secretFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		key = []byte(strings.TrimSpace(string(b)))
	}
	if len(key) == 0 {
		fmt.Fprintln(os.Stderr, "error: provide -secret or -secret-file")
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("shieldd listening on %s (max %d sessions, window %d, %d experiment workers, idle timeout %v)\n",
		l.Addr(), *maxSessions, *inFlight, *expWorkers, *idleTimeout)

	srv, err := heartshield.NewServer(heartshield.ServeOptions{
		Secret:             key,
		MaxSessions:        *maxSessions,
		ExperimentWorkers:  *expWorkers,
		MaxExtraIMDs:       *maxExtra,
		InFlightPerSession: *inFlight,
		IdleTimeout:        *idleTimeout,
		AdmissionWait:      *admissionWait,
		HandshakeRate:      *handshakeRate,
		HandshakeBurst:     *handshakeBurst,
		MaxInFlightGlobal:  *maxInFlight,
		BusyRetryAfter:     *busyRetryAfter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if *listenUDP != "" {
		pc, err := net.ListenPacket("udp", *listenUDP)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("shieldd datagram transport on %s\n", pc.LocalAddr())
		go func() {
			err := srv.ServePacket(pc)
			fmt.Fprintln(os.Stderr, "udp error:", err)
		}()
	}

	if *metricsEach > 0 {
		go func() {
			tick := time.NewTicker(*metricsEach)
			defer tick.Stop()
			for range tick.C {
				fmt.Printf("metrics %s %s\n", time.Now().Format(time.RFC3339), srv.Metrics())
			}
		}()
	}

	err = srv.Serve(l)
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
