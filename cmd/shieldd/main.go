// Command shieldd runs the concurrent shield session server: a long-lived
// daemon serving protected exchanges, attack trials, and experiment runs
// over the securelink-sealed wire protocol, one recycled testbed scenario
// per active session.
//
// Usage:
//
//	shieldd -listen :7700 -secret swordfish
//	shieldd -listen 127.0.0.1:7700 -secret-file /etc/shieldd.secret -max-sessions 128
//
// Drive it with cmd/shieldsim's client mode:
//
//	shieldsim -server 127.0.0.1:7700 -secret swordfish -run fig7 -quick
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"

	"heartshield"
)

func main() {
	var (
		listen      = flag.String("listen", ":7700", "TCP listen address")
		secret      = flag.String("secret", "", "master pairing secret (shared with clients)")
		secretFile  = flag.String("secret-file", "", "file holding the master pairing secret")
		maxSessions = flag.Int("max-sessions", 64, "concurrently active session bound")
		expWorkers  = flag.Int("exp-workers", runtime.NumCPU(), "worker cap for remotely requested experiments")
		maxExtra    = flag.Int("max-extra-imds", 8, "largest multi-IMD batch a session may request")
	)
	flag.Parse()

	key := []byte(*secret)
	if *secretFile != "" {
		b, err := os.ReadFile(*secretFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		key = []byte(strings.TrimSpace(string(b)))
	}
	if len(key) == 0 {
		fmt.Fprintln(os.Stderr, "error: provide -secret or -secret-file")
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("shieldd listening on %s (max %d sessions, %d experiment workers)\n",
		l.Addr(), *maxSessions, *expWorkers)

	err = heartshield.Serve(l, heartshield.ServeOptions{
		Secret:            key,
		MaxSessions:       *maxSessions,
		ExperimentWorkers: *expWorkers,
		MaxExtraIMDs:      *maxExtra,
	})
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
