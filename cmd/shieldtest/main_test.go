package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"heartshield/internal/loadgen"
)

// TestMain doubles this test binary as the shieldtest executable: with
// SHIELDTEST_MAIN=1 it runs main() instead of the tests, so the smoke
// test below exercises the real multi-process path — including the
// -daemon re-exec, which spawns os.Executable() (this same binary, env
// inherited) as fleet children.
func TestMain(m *testing.M) {
	if os.Getenv("SHIELDTEST_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// End-to-end process-mode smoke: the driver spawns a real daemon child,
// drives sessions over TCP and UDP, writes a fleet report, and every
// counter reconciles against the child's METRICS dump.
func TestProcessModeSmoke(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "fleet.json")
	cmd := exec.Command(exe,
		"-daemons", "1",
		"-sessions", "4",
		"-workers", "4",
		"-ops", "2",
		"-mix", "exchange=1,ping=3",
		"-seed", "5",
		"-retry-timeout", "30s",
		"-min-concurrent", "1",
		"-max-failed", "0",
		"-o", out,
	)
	cmd.Env = append(os.Environ(), "SHIELDTEST_MAIN=1")
	var stderr bytes.Buffer
	cmd.Stdout = &stderr
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("shieldtest failed: %v\n%s", err, stderr.String())
	}

	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Sessions.Opened != 4 || rep.Sessions.Failed != 0 {
		t.Fatalf("opened/failed = %d/%d, want 4/0\n%s", rep.Sessions.Opened, rep.Sessions.Failed, stderr.String())
	}
	if len(rep.Daemons) != 1 {
		t.Fatalf("daemon reports = %d, want 1", len(rep.Daemons))
	}
	if !rep.Reconciliation.Checked || !rep.Reconciliation.OK {
		t.Fatalf("reconciliation: %+v", rep.Reconciliation)
	}
	if got := rep.Daemons[0].Metrics.TotalSessions; got != 4 {
		t.Fatalf("daemon counted %d sessions, want 4", got)
	}
	// Both transports were exercised (2 endpoints, sessions round-robin).
	if len(rep.Endpoints) != 2 {
		t.Fatalf("endpoints = %d, want 2 (tcp+udp)", len(rep.Endpoints))
	}
}
