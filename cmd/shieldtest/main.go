// Command shieldtest is the fleet-scale load harness: it spawns N shieldd
// daemon processes (TCP and UDP transports), drives M pooled client
// workers through thousands of concurrent sessions with a configurable
// deterministic op mix, and emits one machine-readable fleet report —
// per-session open and per-op latency quantiles from mergeable HDR-style
// histograms, sessions/sec and ops/sec, and every client-side counter
// reconciled exactly against the daemons' own metrics dumps.
//
// Usage:
//
//	shieldtest -daemons 2 -sessions 1000 -workers 1000 -barrier -ops 2 -mix exchange=1,ping=1
//	shieldtest -daemons 2 -duration 45s -workers 64 -ops 16 -o fleet.json
//	shieldtest -inproc -daemons 1 -sessions 64 -workers 16
//
// Gates (for CI): -min-concurrent fails the run unless that many sessions
// were provably open at once, -min-sessions-per-sec floors throughput,
// and -max-failed caps failed sessions.
//
// Each daemon is this same binary re-exec'd with the hidden -daemon flag:
// the child serves ephemeral localhost ports, announces them as an
// "ADDRS {json}" stdout line, answers "METRICS" requests on stdin with
// "METRICS {json}" dumps, and exits when stdin closes — so daemon metrics
// stay out of the session counters and reconciliation is exact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"heartshield"
	"heartshield/internal/loadgen"
)

func main() {
	var (
		daemonMode = flag.Bool("daemon", false, "run as a fleet daemon child (internal)")
		daemons    = flag.Int("daemons", 2, "shieldd daemon processes to spawn")
		inproc     = flag.Bool("inproc", false, "host the daemons in-process instead of spawning children")
		transports = flag.String("transports", "tcp,udp", "comma-separated transports each daemon serves")
		secret     = flag.String("secret", "shieldtest", "pairing secret shared with the daemons")
		seed       = flag.Int64("seed", 1, "run seed; every session's sim seed and op stream derive from it")

		sessions = flag.Int("sessions", 64, "total sessions (fixed-count mode)")
		workers  = flag.Int("workers", 16, "client worker-pool size (= concurrency ceiling)")
		ops      = flag.Int("ops", 4, "mix-drawn ops per session after the opening ping")
		mixFlag  = flag.String("mix", loadgen.DefaultMix.String(), "op mix weights")
		batch    = flag.Int("batch", 8, "exchanges per BATCH op")
		expName  = flag.String("experiment", "fig7", "experiment EXPERIMENT ops run (always -quick)")
		duration = flag.Duration("duration", 0, "soak mode: cycle sessions until this deadline instead of -sessions")
		barrier  = flag.Bool("barrier", false, "hold every session open until all -sessions are open (requires -workers == -sessions)")
		openConc = flag.Int("open-concurrency", 64, "cap on simultaneous dial+open handshakes (0 = unlimited)")

		retryTimeout = flag.Duration("retry-timeout", 2*time.Second, "initial datagram retransmission timeout")
		maxRetries   = flag.Int("max-retries", 8, "datagram retransmissions per request")

		maxSessions = flag.Int("max-sessions", 0, "per-daemon session bound (0 = auto: workers + 8)")
		inFlight    = flag.Int("inflight", 16, "per-session pipelining window on the daemons")
		expWorkers  = flag.Int("exp-workers", runtime.NumCPU(), "per-daemon experiment worker cap")

		minConcurrent = flag.Int64("min-concurrent", 0, "gate: fail unless this many sessions were open at once")
		minRate       = flag.Float64("min-sessions-per-sec", 0, "gate: fail below this sessions/sec floor")
		maxFailed     = flag.Int64("max-failed", -1, "gate: fail above this many failed sessions (-1 disables)")

		output = flag.String("o", "-", "fleet report JSON destination (- = stdout)")
	)
	flag.Parse()

	trs := strings.Split(*transports, ",")
	for i := range trs {
		trs[i] = strings.TrimSpace(trs[i])
	}

	if *daemonMode {
		os.Exit(runDaemonChild(trs, []byte(*secret), *maxSessions, *inFlight, *expWorkers))
	}

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	if *maxSessions == 0 {
		*maxSessions = *workers + 8
	}

	var fleet []loadgen.Daemon
	if *inproc {
		fleet, err = loadgen.StartInprocFleet(*daemons, trs, heartshield.ServeOptions{
			Secret:             []byte(*secret),
			MaxSessions:        *maxSessions,
			InFlightPerSession: *inFlight,
			ExperimentWorkers:  *expWorkers,
		})
	} else {
		fleet, err = startProcFleet(*daemons, trs, *secret, *maxSessions, *inFlight, *expWorkers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer loadgen.CloseFleet(fleet)

	cfg := loadgen.Config{
		Seed:            *seed,
		Secret:          []byte(*secret),
		Sessions:        *sessions,
		Workers:         *workers,
		OpsPerSession:   *ops,
		Mix:             mix,
		BatchSize:       *batch,
		Experiment:      *expName,
		Duration:        *duration,
		OpenBarrier:     *barrier,
		OpenConcurrency: *openConc,
		RetryTimeout:    *retryTimeout,
		MaxRetries:      *maxRetries,
	}
	rep, err := loadgen.RunFleet(cfg, fleet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	b, err := rep.MarshalIndent()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *output == "-" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*output, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "shieldtest: %d daemons, %d endpoints: opened=%d survived=%d failed=%d maxConcurrent=%d %.1f sessions/s %.1f ops/s\n",
		len(fleet), len(rep.Endpoints), rep.Sessions.Opened, rep.Sessions.Survived,
		rep.Sessions.Failed, rep.Sessions.MaxConcurrent,
		rep.Throughput.SessionsPerSec, rep.Throughput.OpsPerSec)
	fmt.Fprintf(os.Stderr, "shieldtest: open %s\n", rep.Latency.Open)
	fmt.Fprintf(os.Stderr, "shieldtest: op   %s\n", rep.Latency.Op)

	ok := true
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "shieldtest: GATE FAILED: "+format+"\n", args...)
		ok = false
	}
	if *minConcurrent > 0 && rep.Sessions.MaxConcurrent < *minConcurrent {
		fail("max concurrent sessions %d < floor %d", rep.Sessions.MaxConcurrent, *minConcurrent)
	}
	if *minRate > 0 && rep.Throughput.SessionsPerSec < *minRate {
		fail("%.2f sessions/sec < floor %.2f", rep.Throughput.SessionsPerSec, *minRate)
	}
	if *maxFailed >= 0 && int64(rep.Sessions.Failed) > *maxFailed {
		fail("%d failed sessions > ceiling %d (%v)", rep.Sessions.Failed, *maxFailed, rep.Sessions.FailReasons)
	}
	if *maxFailed == 0 && !(rep.Reconciliation.Checked && rep.Reconciliation.OK) {
		fail("client/daemon counters did not reconcile: %+v", rep.Reconciliation.Checks)
	}
	if !ok {
		os.Exit(1)
	}
}

// runDaemonChild is the hidden -daemon mode: serve on ephemeral localhost
// ports, announce them on stdout, answer METRICS requests on stdin, exit
// on stdin EOF (the parent closing our pipe is the shutdown signal).
func runDaemonChild(transports []string, secret []byte, maxSessions, inFlight, expWorkers int) int {
	if maxSessions == 0 {
		maxSessions = 64
	}
	srv, err := heartshield.NewServer(heartshield.ServeOptions{
		Secret:             secret,
		MaxSessions:        maxSessions,
		InFlightPerSession: inFlight,
		ExperimentWorkers:  expWorkers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon error:", err)
		return 1
	}
	var eps []loadgen.Endpoint
	for _, tr := range transports {
		switch tr {
		case "tcp":
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, "daemon error:", err)
				return 1
			}
			eps = append(eps, loadgen.Endpoint{Transport: "tcp", Addr: l.Addr().String()})
			go srv.Serve(l)
		case "udp":
			pc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, "daemon error:", err)
				return 1
			}
			eps = append(eps, loadgen.Endpoint{Transport: "udp", Addr: pc.LocalAddr().String()})
			go srv.ServePacket(pc)
		default:
			fmt.Fprintf(os.Stderr, "daemon error: unknown transport %q\n", tr)
			return 1
		}
	}
	b, err := json.Marshal(eps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "daemon error:", err)
		return 1
	}
	fmt.Printf("ADDRS %s\n", b)

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "METRICS" {
			continue
		}
		m, err := json.Marshal(srv.Metrics())
		if err != nil {
			fmt.Fprintln(os.Stderr, "daemon error:", err)
			return 1
		}
		fmt.Printf("METRICS %s\n", m)
	}
	return 0 // stdin EOF: parent is done with us
}

// procDaemon is one spawned shieldtest -daemon child.
type procDaemon struct {
	id  int
	cmd *exec.Cmd
	w   io.WriteCloser
	r   *bufio.Scanner
	mu  sync.Mutex
	eps []loadgen.Endpoint
}

// startProcFleet spawns n daemon children by re-exec'ing this binary
// with -daemon (os.Executable survives `go run` and test binaries).
func startProcFleet(n int, transports []string, secret string, maxSessions, inFlight, expWorkers int) ([]loadgen.Daemon, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	fleet := make([]loadgen.Daemon, 0, n)
	for i := 0; i < n; i++ {
		d, err := startProcDaemon(self, i, transports, secret, maxSessions, inFlight, expWorkers)
		if err != nil {
			loadgen.CloseFleet(fleet)
			return nil, err
		}
		fleet = append(fleet, d)
	}
	return fleet, nil
}

func startProcDaemon(self string, id int, transports []string, secret string, maxSessions, inFlight, expWorkers int) (*procDaemon, error) {
	cmd := exec.Command(self,
		"-daemon",
		"-transports", strings.Join(transports, ","),
		"-secret", secret,
		"-max-sessions", fmt.Sprint(maxSessions),
		"-inflight", fmt.Sprint(inFlight),
		"-exp-workers", fmt.Sprint(expWorkers),
	)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	d := &procDaemon{
		id:  id,
		cmd: cmd,
		w:   stdin,
		r:   bufio.NewScanner(stdout),
	}
	// First line must be the ADDRS announcement.
	line, err := d.readPrefixed("ADDRS ")
	if err != nil {
		d.Close()
		return nil, fmt.Errorf("daemon %d: %w", id, err)
	}
	if err := json.Unmarshal([]byte(line), &d.eps); err != nil {
		d.Close()
		return nil, fmt.Errorf("daemon %d: bad ADDRS: %w", id, err)
	}
	for i := range d.eps {
		d.eps[i].Daemon = id
	}
	return d, nil
}

// readPrefixed scans stdout lines until one carries the prefix, skipping
// any daemon chatter, and returns the rest of that line.
func (d *procDaemon) readPrefixed(prefix string) (string, error) {
	for d.r.Scan() {
		if rest, ok := strings.CutPrefix(d.r.Text(), prefix); ok {
			return rest, nil
		}
	}
	if err := d.r.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("daemon exited before %q line", strings.TrimSpace(prefix))
}

func (d *procDaemon) ID() int                       { return d.id }
func (d *procDaemon) Endpoints() []loadgen.Endpoint { return d.eps }

func (d *procDaemon) Metrics() (heartshield.ServerMetrics, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var m heartshield.ServerMetrics
	if _, err := fmt.Fprintln(d.w, "METRICS"); err != nil {
		return m, err
	}
	line, err := d.readPrefixed("METRICS ")
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		return m, err
	}
	return m, nil
}

func (d *procDaemon) Close() error {
	d.w.Close() // stdin EOF tells the child to exit
	werr := make(chan error, 1)
	go func() { werr <- d.cmd.Wait() }()
	select {
	case err := <-werr:
		return err
	case <-time.After(5 * time.Second):
		d.cmd.Process.Kill()
		return <-werr
	}
}
