// Command attacksim runs interactive attack scenarios against the
// simulated IMD and prints an outcome trace: the tool answers "what
// happens if an adversary at location L replays command C with/without
// the shield".
//
// Usage:
//
//	attacksim -location 1 -command therapy
//	attacksim -location 8 -command interrogate -power high -trials 20
package main

import (
	"flag"
	"fmt"
	"os"

	"heartshield"
)

func main() {
	var (
		location = flag.Int("location", 1, "adversary location 1..18 (Fig. 6)")
		command  = flag.String("command", "therapy", "command: interrogate | therapy")
		power    = flag.String("power", "fcc", "adversary power: fcc | high (100x)")
		trials   = flag.Int("trials", 10, "attempts per arm")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		trace    = flag.Bool("trace", false, "print an air-interface timeline of one shielded attempt")
	)
	flag.Parse()

	kind := heartshield.SetTherapy
	if *command == "interrogate" {
		kind = heartshield.Interrogate
	} else if *command != "therapy" {
		fmt.Fprintln(os.Stderr, "unknown command:", *command)
		os.Exit(2)
	}

	sim := heartshield.NewSimulation(heartshield.SimOptions{
		Seed:               *seed,
		Location:           *location,
		HighPowerAdversary: *power == "high",
	})

	fmt.Printf("target: %s\n", sim.IMDName())
	fmt.Printf("adversary: %s power, at %s\n", *power, sim.Location())
	fmt.Printf("command: %s, %d attempts per arm\n\n", *command, *trials)

	for _, shieldOn := range []bool{false, true} {
		succ, jams, alarms := 0, 0, 0
		for i := 0; i < *trials; i++ {
			rep := sim.Attack(kind, shieldOn)
			ok := rep.IMDResponded
			if kind == heartshield.SetTherapy {
				ok = rep.TherapyChanged
			}
			if ok {
				succ++
			}
			if rep.ShieldJammed {
				jams++
			}
			if rep.Alarmed {
				alarms++
			}
		}
		state := "ABSENT"
		if shieldOn {
			state = "PRESENT"
		}
		fmt.Printf("shield %-8s attack succeeded %2d/%d", state, succ, *trials)
		if shieldOn {
			fmt.Printf("   jammed %2d/%d   alarms %2d/%d", jams, *trials, alarms, *trials)
		}
		fmt.Println()
	}

	if *trace {
		fmt.Println("\nair-interface trace of one shielded attempt:")
		_, timeline := sim.AttackTrace(kind, true)
		fmt.Print(timeline)
	}
}
