// Command micscan renders the spectral views of the paper's Fig. 4 and
// Fig. 5: the IMD's FSK power profile and the shield's shaped/flat
// jamming profiles, as an ASCII plot or CSV.
//
// Usage:
//
//	micscan                  # ASCII plot of all three profiles
//	micscan -csv > psd.csv   # machine-readable output
package main

import (
	"flag"
	"fmt"
	"strings"

	"heartshield"
)

func main() {
	var (
		csv  = flag.Bool("csv", false, "emit CSV instead of an ASCII plot")
		seed = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	res, err := heartshield.RunExperiment("fig5", heartshield.ExperimentConfig{Seed: *seed, Quick: true})
	if err != nil {
		panic(err)
	}
	fig5 := res.Render()

	if *csv {
		// The Render output is row-oriented already; re-emit as CSV.
		for _, line := range strings.Split(fig5, "\n") {
			fields := strings.Fields(line)
			if len(fields) == 4 && isNumeric(fields[0]) {
				fmt.Printf("%s,%s,%s,%s\n", fields[0], fields[1], fields[2], fields[3])
			}
		}
		return
	}

	fmt.Print(fig5)
	fmt.Println()
	fmt.Println("ASCII view (each row one frequency bin; # = IMD, * = shaped jam):")
	plotRows(fig5)
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && c != '-' && c != '.' && c != '+' {
			return false
		}
	}
	return true
}

// plotRows renders a crude two-series bar chart from the Fig. 5 rows.
func plotRows(rendered string) {
	for _, line := range strings.Split(rendered, "\n") {
		f := strings.Fields(line)
		if len(f) != 4 || !isNumeric(f[0]) {
			continue
		}
		var freq, imd, shaped float64
		fmt.Sscanf(f[0], "%f", &freq)
		fmt.Sscanf(f[1], "%f", &imd)
		fmt.Sscanf(f[2], "%f", &shaped)
		fmt.Printf("%8.0f kHz |%-30s|%-30s\n", freq, bar(imd, '#'), bar(shaped, '*'))
	}
}

// bar maps a dBr value in [-60, 0] to a bar of up to 30 chars.
func bar(dbr float64, c byte) string {
	if dbr < -60 {
		dbr = -60
	}
	n := int((dbr + 60) / 2)
	return strings.Repeat(string(c), n)
}
