// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark result line, so CI can
// archive and diff benchmark runs (see `make bench`, which writes
// BENCH_latest.json).
//
// Each object carries the benchmark name, iteration count, ns/op, the
// allocation metrics when -benchmem is on, and every custom metric
// reported via b.ReportMetric (e.g. lossRate, meanCancel_dB).
//
// With -baseline, benchjson additionally compares the parsed run against
// a checked-in baseline JSON (produced by an earlier benchjson run) and
// exits non-zero when any benchmark present in both regressed by more
// than -threshold percent ns/op — the CI perf gate (`make benchcheck`).
// Benchmarks missing from either side are reported but never fail the
// gate, so adding or retiring benchmarks does not break CI.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_latest.json
//	go test -bench=Exchange ./... | benchjson -baseline BENCH_baseline.json -threshold 25 > BENCH_latest.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON to compare against (enables the perf gate)")
	threshold := flag.Float64("threshold", 25, "max allowed ns/op regression percent vs the baseline")
	flag.Parse()

	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if !compare(*baseline, results, *threshold) {
			os.Exit(1)
		}
	}
}

// key identifies a benchmark across runs.
func key(r Result) string { return r.Package + "." + r.Name }

// compare reports every benchmark's ns/op against the baseline on
// stderr and returns false when any shared benchmark regressed by more
// than threshold percent.
func compare(baselinePath string, latest []Result, threshold float64) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		return false
	}
	var base []Result
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		return false
	}
	baseByKey := make(map[string]Result, len(base))
	for _, r := range base {
		baseByKey[key(r)] = r
	}

	ok := true
	seen := make(map[string]bool, len(latest))
	for _, r := range latest {
		seen[key(r)] = true
		b, found := baseByKey[key(r)]
		if !found {
			fmt.Fprintf(os.Stderr, "NEW      %-55s %12.0f ns/op (no baseline)\n", key(r), r.NsPerOp)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		deltaPct := (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		verdict := "OK      "
		if deltaPct > threshold {
			verdict = "REGRESS "
			ok = false
		}
		fmt.Fprintf(os.Stderr, "%s %-55s %12.0f -> %12.0f ns/op (%+.1f%%, limit +%.0f%%)\n",
			verdict, key(r), b.NsPerOp, r.NsPerOp, deltaPct, threshold)
	}
	for k := range baseByKey {
		if !seen[k] {
			fmt.Fprintf(os.Stderr, "MISSING  %-55s in latest run (not gated)\n", k)
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regression beyond %.0f%% — refresh BENCH_baseline.json only with an explanation in the PR\n", threshold)
	}
	return ok
}

// parseBenchLine parses one "BenchmarkX-8  123  456 ns/op  7 B/op ..."
// line; value/unit pairs after the iteration count become metrics.
func parseBenchLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:    trimCPUSuffix(fields[0]),
		Package: pkg,
		Iters:   iters,
		Metrics: map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = val
		} else {
			r.Metrics[unit] = val
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

// trimCPUSuffix drops the trailing -N GOMAXPROCS marker from a benchmark
// name when present.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
