// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark result line, so CI can
// archive and diff benchmark runs (see `make bench`, which writes
// BENCH_latest.json).
//
// Each object carries the benchmark name, iteration count, ns/op, the
// allocation metrics when -benchmem is on, and every custom metric
// reported via b.ReportMetric (e.g. lossRate, meanCancel_dB).
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_latest.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if r, ok := parseBenchLine(line, pkg); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one "BenchmarkX-8  123  456 ns/op  7 B/op ..."
// line; value/unit pairs after the iteration count become metrics.
func parseBenchLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:    trimCPUSuffix(fields[0]),
		Package: pkg,
		Iters:   iters,
		Metrics: map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = val
		} else {
			r.Metrics[unit] = val
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}

// trimCPUSuffix drops the trailing -N GOMAXPROCS marker from a benchmark
// name when present.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
