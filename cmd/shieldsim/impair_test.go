package main

import (
	"strings"
	"testing"
	"time"

	"heartshield/internal/faultnet"
)

// TestParseImpairSpec locks the -impair grammar: every valid form
// parses to exactly the impairment it names, and every malformed form —
// including the historically silent ones (bare "up", empty "down=",
// negative durations and depths) — fails with a usage error that names
// the offending field.
func TestParseImpairSpec(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		want    impairSpec
		wantErr string // substring of the error; empty = must parse
	}{
		{
			name: "empty spec is a perfect network",
			spec: "",
			want: impairSpec{},
		},
		{
			name: "base keys",
			spec: "drop=0.1,dup=0.05,reorder=0.2,corrupt=0.01,delay=2ms,jitter=1ms,depth=3",
			want: impairSpec{imp: faultnet.Impairment{
				Drop: 0.1, Dup: 0.05, Reorder: 0.2, Corrupt: 0.01,
				Delay: 2 * time.Millisecond, Jitter: time.Millisecond, ReorderDepth: 3,
			}},
		},
		{
			name: "whitespace tolerated around fields",
			spec: " drop=0.5 , delay=1ms ",
			want: impairSpec{imp: faultnet.Impairment{Drop: 0.5, Delay: time.Millisecond}},
		},
		{
			name: "per-direction overrides",
			spec: "drop=0.1,up=drop:0.5+delay:2ms,down=dup:0.25",
			want: impairSpec{
				imp:  faultnet.Impairment{Drop: 0.1},
				up:   &faultnet.Impairment{Drop: 0.5, Delay: 2 * time.Millisecond},
				down: &faultnet.Impairment{Dup: 0.25},
			},
		},
		{
			name: "partition windows accumulate",
			spec: "partition=500ms:2s,partition=4s:1s",
			want: impairSpec{partitions: []faultnet.Partition{
				{Start: 500 * time.Millisecond, Dur: 2 * time.Second},
				{Start: 4 * time.Second, Dur: time.Second},
			}},
		},
		{
			name:    "unknown key rejected",
			spec:    "lose=0.1",
			wantErr: `unknown impairment key "lose"`,
		},
		{
			name:    "unknown key inside an override rejected",
			spec:    "up=lose:0.1",
			wantErr: `unknown impairment key "lose"`,
		},
		{
			name:    "bare up is not a zero override",
			spec:    "drop=0.3,up",
			wantErr: "up needs a value",
		},
		{
			name:    "empty down is not a zero override",
			spec:    "down=",
			wantErr: "down needs a value",
		},
		{
			name:    "bare key without value",
			spec:    "drop",
			wantErr: "not key=value",
		},
		{
			name:    "probability above one",
			spec:    "drop=1.5",
			wantErr: "probability in [0,1]",
		},
		{
			name:    "negative probability",
			spec:    "dup=-0.1",
			wantErr: "probability in [0,1]",
		},
		{
			name:    "negative delay",
			spec:    "delay=-2ms",
			wantErr: "non-negative duration",
		},
		{
			name:    "negative jitter inside an override",
			spec:    "up=jitter:-1ms",
			wantErr: "non-negative duration",
		},
		{
			name:    "negative depth",
			spec:    "depth=-4",
			wantErr: "non-negative count",
		},
		{
			name:    "bare partition",
			spec:    "partition",
			wantErr: "want start:dur",
		},
		{
			name:    "partition missing duration",
			spec:    "partition=500ms",
			wantErr: "want start:dur",
		},
		{
			name:    "negative partition start",
			spec:    "partition=-1s:2s",
			wantErr: "non-negative duration",
		},
		{
			name:    "zero-length partition",
			spec:    "partition=1s:0s",
			wantErr: "positive duration",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseImpairSpec(tc.spec)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("parseImpairSpec(%q) accepted, want error containing %q (got %+v)",
						tc.spec, tc.wantErr, got)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseImpairSpec(%q) error = %q, want it to contain %q",
						tc.spec, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseImpairSpec(%q): %v", tc.spec, err)
			}
			if got.imp != tc.want.imp {
				t.Errorf("base impairment = %+v, want %+v", got.imp, tc.want.imp)
			}
			checkOverride(t, "up", got.up, tc.want.up)
			checkOverride(t, "down", got.down, tc.want.down)
			if len(got.partitions) != len(tc.want.partitions) {
				t.Fatalf("partitions = %+v, want %+v", got.partitions, tc.want.partitions)
			}
			for i := range got.partitions {
				if got.partitions[i] != tc.want.partitions[i] {
					t.Errorf("partition %d = %+v, want %+v", i, got.partitions[i], tc.want.partitions[i])
				}
			}
		})
	}
}

func checkOverride(t *testing.T, dir string, got, want *faultnet.Impairment) {
	t.Helper()
	switch {
	case got == nil && want == nil:
	case got == nil || want == nil:
		t.Errorf("%s override = %+v, want %+v", dir, got, want)
	case *got != *want:
		t.Errorf("%s override = %+v, want %+v", dir, *got, *want)
	}
}
