// Command shieldsim regenerates the paper's tables and figures on the
// simulated testbed and prints the same rows/series the paper reports —
// locally, or remotely against a running shieldd session server.
//
// Usage:
//
//	shieldsim -list
//	shieldsim -run fig7
//	shieldsim -run all -quick
//	shieldsim -run fig11 -trials 100 -seed 7
//	shieldsim -server 127.0.0.1:7700 -secret swordfish -run fig7 -quick
//	shieldsim -server 127.0.0.1:7700 -secret swordfish -batch 64 -session-metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"heartshield"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment name, or 'all'")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		trials  = flag.Int("trials", 0, "per-point trials (0 = experiment default)")
		quick   = flag.Bool("quick", false, "reduced trial counts")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel scenario workers (output is identical for any value)")
		server  = flag.String("server", "", "run experiments remotely on this shieldd address")
		secret  = flag.String("secret", "", "pairing secret for -server")
		batch   = flag.Int("batch", 0, "with -server: run this many protected exchanges as BATCH-EXCHANGE frames")
		sessMet = flag.Bool("session-metrics", false, "with -server: print the session's STATUS-METRICS before closing")
	)
	flag.Parse()

	if *list || (*run == "" && *batch == 0) {
		fmt.Println("experiments (use -run <name> or -run all):")
		for _, e := range heartshield.Experiments() {
			fmt.Printf("  %-18s %s\n", e.Name, e.Title)
		}
		if *run == "" && *batch == 0 && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := heartshield.ExperimentConfig{Seed: *seed, Trials: *trials, Quick: *quick, Workers: *workers}
	names := []string{*run}
	if *run == "all" {
		names = names[:0]
		seen := map[string]bool{}
		for _, e := range heartshield.Experiments() {
			if e.Name == "fig10" { // measured jointly with fig9
				continue
			}
			if !seen[e.Name] {
				names = append(names, e.Name)
				seen[e.Name] = true
			}
		}
	}

	var remote *heartshield.RemoteSimulation
	if *server != "" {
		var err error
		remote, err = heartshield.Dial(*server, []byte(*secret),
			heartshield.DialOptions{SimOptions: heartshield.SimOptions{Seed: *seed}})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer remote.Close()
		fmt.Printf("[session %d on %s]\n\n", remote.SessionID(), *server)
	}

	if *batch > 0 {
		if remote == nil {
			fmt.Fprintln(os.Stderr, "error: -batch requires -server")
			os.Exit(2)
		}
		runBatch(remote, *batch)
		if *run == "" {
			printSessionMetrics(remote, *sessMet)
			return
		}
	}

	for _, name := range names {
		start := time.Now()
		var rendered string
		if remote != nil {
			out, err := remote.RunExperiment(name, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			rendered = out
		} else {
			res, err := heartshield.RunExperiment(name, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			rendered = res.Render()
		}
		fmt.Print(rendered)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if remote != nil {
		printSessionMetrics(remote, *sessMet)
	}
}

// runBatch drives n protected exchanges through BATCH-EXCHANGE frames
// (up to 256 per sealed round trip) and prints a summary.
func runBatch(remote *heartshield.RemoteSimulation, n int) {
	start := time.Now()
	var sumBER, sumCancel float64
	done := 0
	for done < n {
		chunk := n - done
		if chunk > 256 {
			chunk = 256
		}
		items := make([]heartshield.BatchItem, chunk)
		for i := range items {
			items[i] = heartshield.BatchItem{IMD: 0, Command: heartshield.Interrogate}
		}
		reports, err := remote.ProtectedExchangeBatch(items)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, rep := range reports {
			sumBER += rep.EavesdropperBER
			sumCancel += rep.CancellationDB
		}
		done += chunk
	}
	elapsed := time.Since(start)
	fmt.Printf("batched %d exchanges in %v (%.2f ms/exchange): mean eavesdropper BER %.4f, mean cancellation %.2f dB\n\n",
		n, elapsed.Round(time.Millisecond),
		float64(elapsed.Milliseconds())/float64(n), sumBER/float64(n), sumCancel/float64(n))
}

// printSessionMetrics prints the session's STATUS-METRICS when asked.
func printSessionMetrics(remote *heartshield.RemoteSimulation, enabled bool) {
	if !enabled {
		return
	}
	m, err := remote.SessionMetrics()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Printf("[session %d metrics: protocol v%d exchanges=%d batches=%d batched=%d attacks=%d experiments=%d pings=%d errors=%d inflightHWM=%d sealedB=%d openedB=%d rekeys=%d]\n",
		m.SessionID, m.Protocol, m.Exchanges, m.Batches, m.BatchedExchanges,
		m.Attacks, m.Experiments, m.Pings, m.Errors, m.InFlightHWM,
		m.BytesSealed, m.BytesOpened, m.Rekeys)
}
