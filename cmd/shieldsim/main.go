// Command shieldsim regenerates the paper's tables and figures on the
// simulated testbed and prints the same rows/series the paper reports —
// locally, or remotely against a running shieldd session server.
//
// Usage:
//
//	shieldsim -list
//	shieldsim -run fig7
//	shieldsim -run all -quick
//	shieldsim -run fig11 -trials 100 -seed 7
//	shieldsim -server 127.0.0.1:7700 -secret swordfish -run fig7 -quick
//	shieldsim -server 127.0.0.1:7700 -secret swordfish -batch 64 -session-metrics
//	shieldsim -server 127.0.0.1:7701 -transport udp -secret swordfish -batch 64
//	shieldsim -transport udp -impair "drop=0.1,dup=0.05,reorder=0.05" -exchanges 64
//	shieldsim -impair "drop=0.05,partition=500ms:2s" -exchanges 64
//	shieldsim -impair "up=drop:0.3,down=delay:2ms+jitter:1ms" -exchanges 32
//
// -transport udp dials the server's datagram listener instead of TCP.
// -impair (no -server) runs a self-contained chaos session: an
// in-process server and a datagram client joined by the deterministic
// faultnet impairment layer, reporting retransmit and securelink window
// activity — the CLI face of the chaos test wall. On top of the
// probability/latency keys it takes partition=start:dur outage windows
// (repeatable; offsets from session establishment) and up=/down=
// per-direction overrides written as colon pairs joined by '+'.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"heartshield"
	"heartshield/internal/faultnet"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		run       = flag.String("run", "", "experiment name, or 'all'")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		trials    = flag.Int("trials", 0, "per-point trials (0 = experiment default)")
		quick     = flag.Bool("quick", false, "reduced trial counts")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel scenario workers (output is identical for any value)")
		server    = flag.String("server", "", "run experiments remotely on this shieldd address")
		secret    = flag.String("secret", "", "pairing secret for -server")
		batch     = flag.Int("batch", 0, "with -server: run this many protected exchanges as BATCH-EXCHANGE frames")
		sessMet   = flag.Bool("session-metrics", false, "with -server: print the session's STATUS-METRICS before closing")
		transport = flag.String("transport", "tcp", "with -server: tcp or udp (datagram sessions with retransmission)")
		impair    = flag.String("impair", "", "run a self-contained impaired datagram session: drop=P,dup=P,reorder=P,corrupt=P,delay=D,jitter=D,partition=start:dur,up=k:v+k:v,down=k:v+k:v")
		impSeed   = flag.Int64("impair-seed", 1, "faultnet impairment schedule seed (deterministic per seed)")
		exchanges = flag.Int("exchanges", 64, "with -impair: individual protected exchanges to drive through the impaired link")
		pipeline  = flag.Bool("pipeline", false, "with -impair: keep a full send window of exchanges in flight (selective-repeat pipelining) instead of one round trip at a time")
	)
	flag.Parse()

	if *impair != "" {
		if *server != "" {
			fmt.Fprintln(os.Stderr, "error: -impair runs in-process; drop -server")
			os.Exit(2)
		}
		runImpaired(*impair, *impSeed, *seed, *exchanges, *pipeline)
		return
	}

	if *list || (*run == "" && *batch == 0) {
		fmt.Println("experiments (use -run <name> or -run all):")
		for _, e := range heartshield.Experiments() {
			fmt.Printf("  %-18s %s\n", e.Name, e.Title)
		}
		if *run == "" && *batch == 0 && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := heartshield.ExperimentConfig{Seed: *seed, Trials: *trials, Quick: *quick, Workers: *workers}
	names := []string{*run}
	if *run == "all" {
		names = names[:0]
		seen := map[string]bool{}
		for _, e := range heartshield.Experiments() {
			if e.Name == "fig10" { // measured jointly with fig9
				continue
			}
			if !seen[e.Name] {
				names = append(names, e.Name)
				seen[e.Name] = true
			}
		}
	}

	var remote *heartshield.RemoteSimulation
	if *server != "" {
		var err error
		opt := heartshield.DialOptions{SimOptions: heartshield.SimOptions{Seed: *seed}}
		switch *transport {
		case "tcp":
			remote, err = heartshield.Dial(*server, []byte(*secret), opt)
		case "udp":
			remote, err = heartshield.DialUDP(*server, []byte(*secret), opt)
		default:
			err = fmt.Errorf("unknown -transport %q (tcp or udp)", *transport)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer remote.Close()
		fmt.Printf("[session %d on %s/%s]\n\n", remote.SessionID(), *transport, *server)
	}

	if *batch > 0 {
		if remote == nil {
			fmt.Fprintln(os.Stderr, "error: -batch requires -server")
			os.Exit(2)
		}
		runBatch(remote, *batch)
		if *run == "" {
			printSessionMetrics(remote, *sessMet)
			return
		}
	}

	for _, name := range names {
		start := time.Now()
		var rendered string
		if remote != nil {
			// Streamed progress (wire v3): the server reports completed
			// trials while the experiment runs, so long remote runs are
			// visibly alive. On v2 servers no progress arrives and the
			// call behaves exactly like RunExperiment.
			out, err := remote.RunExperimentStream(name, cfg, func(p heartshield.ExperimentProgress) {
				fmt.Fprintf(os.Stderr, "\r[%s: %d/%d trials]", p.Stage, p.Done, p.Total)
				if p.Done == p.Total {
					fmt.Fprint(os.Stderr, "\n")
				}
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			rendered = out
		} else {
			res, err := heartshield.RunExperiment(name, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			rendered = res.Render()
		}
		fmt.Print(rendered)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if remote != nil {
		printSessionMetrics(remote, *sessMet)
	}
}

// runBatch drives n protected exchanges through BATCH-EXCHANGE frames
// (up to 256 per sealed round trip) and prints a summary.
func runBatch(remote *heartshield.RemoteSimulation, n int) {
	start := time.Now()
	var sumBER, sumCancel float64
	done := 0
	for done < n {
		chunk := n - done
		if chunk > 256 {
			chunk = 256
		}
		items := make([]heartshield.BatchItem, chunk)
		for i := range items {
			items[i] = heartshield.BatchItem{IMD: 0, Command: heartshield.Interrogate}
		}
		reports, err := remote.ProtectedExchangeBatch(items)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		for _, rep := range reports {
			sumBER += rep.EavesdropperBER
			sumCancel += rep.CancellationDB
		}
		done += chunk
	}
	elapsed := time.Since(start)
	fmt.Printf("batched %d exchanges in %v (%.2f ms/exchange): mean eavesdropper BER %.4f, mean cancellation %.2f dB\n\n",
		n, elapsed.Round(time.Millisecond),
		float64(elapsed.Milliseconds())/float64(n), sumBER/float64(n), sumCancel/float64(n))
}

// impairSpec is a fully parsed -impair specification: the network-wide
// impairment, optional per-direction overrides, and a partition
// schedule.
type impairSpec struct {
	imp        faultnet.Impairment
	up, down   *faultnet.Impairment // client→server / server→client overrides
	partitions []faultnet.Partition
}

// parseImpairSpec parses the full -impair grammar. On top of the base
// keys (see parseImpairment), it accepts:
//
//   - partition=start:dur — a scheduled full outage, offsets measured
//     from session establishment; repeat the key for several windows
//     ("partition=500ms:2s,partition=4s:1s").
//   - up=... / down=... — per-direction impairment overrides for the
//     client→server (up) or server→client (down) flow, written as
//     colon-separated pairs joined by '+' ("up=drop:0.5+delay:2ms").
func parseImpairSpec(spec string) (impairSpec, error) {
	var out impairSpec
	var base []string
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, hasVal := strings.Cut(field, "=")
		switch key {
		case "partition":
			startS, durS, ok := strings.Cut(val, ":")
			if !hasVal || !ok {
				return out, fmt.Errorf("impairment partition=%q: want start:dur", val)
			}
			start, err := time.ParseDuration(startS)
			if err != nil || start < 0 {
				return out, fmt.Errorf("impairment partition start %q: want a non-negative duration", startS)
			}
			dur, err := time.ParseDuration(durS)
			if err != nil || dur <= 0 {
				return out, fmt.Errorf("impairment partition dur %q: want a positive duration", durS)
			}
			out.partitions = append(out.partitions, faultnet.Partition{Start: start, Dur: dur})
		case "up", "down":
			// A bare "up"/"down" (or an empty value) would silently
			// install a zero-impairment override — masking the base spec
			// for that direction. Demand an explicit value.
			if !hasVal || val == "" {
				return out, fmt.Errorf("impairment %s needs a value, e.g. %s=drop:0.5+delay:2ms", key, key)
			}
			sub := strings.ReplaceAll(strings.ReplaceAll(val, ":", "="), "+", ",")
			imp, err := parseImpairment(sub)
			if err != nil {
				return out, fmt.Errorf("impairment %s=%q: %v", key, val, err)
			}
			if key == "up" {
				out.up = &imp
			} else {
				out.down = &imp
			}
		default:
			base = append(base, field)
		}
	}
	var err error
	out.imp, err = parseImpairment(strings.Join(base, ","))
	return out, err
}

// parseImpairment parses "drop=0.1,dup=0.05,reorder=0.05,corrupt=0.01,
// delay=2ms,jitter=1ms" into a faultnet impairment.
func parseImpairment(spec string) (faultnet.Impairment, error) {
	var imp faultnet.Impairment
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return imp, fmt.Errorf("impairment field %q is not key=value", field)
		}
		switch key {
		case "drop", "dup", "reorder", "corrupt":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return imp, fmt.Errorf("impairment %s=%q: want a probability in [0,1]", key, val)
			}
			switch key {
			case "drop":
				imp.Drop = p
			case "dup":
				imp.Dup = p
			case "reorder":
				imp.Reorder = p
			case "corrupt":
				imp.Corrupt = p
			}
		case "delay", "jitter":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return imp, fmt.Errorf("impairment %s=%q: want a non-negative duration", key, val)
			}
			if key == "delay" {
				imp.Delay = d
			} else {
				imp.Jitter = d
			}
		case "depth":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return imp, fmt.Errorf("impairment depth=%q: want a non-negative count", val)
			}
			imp.ReorderDepth = n
		default:
			return imp, fmt.Errorf("unknown impairment key %q", key)
		}
	}
	return imp, nil
}

// runImpaired is the self-contained chaos mode: an in-process server
// and a datagram session joined by the deterministic faultnet layer,
// driving n protected exchanges — one at a time, or pipelined through
// the selective-repeat send window — and reporting what the loss cost:
// retransmits on both sides, securelink window activity, and the
// impairment schedule's own counters.
func runImpaired(spec string, impairSeed, sessionSeed int64, n int, pipelined bool) {
	parsed, err := parseImpairSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	nw := faultnet.New(impairSeed, parsed.imp)
	defer nw.Close()
	if parsed.up != nil {
		nw.SetFlowImpairment("client", "server", *parsed.up)
	}
	if parsed.down != nil {
		nw.SetFlowImpairment("server", "client", *parsed.down)
	}

	secret := []byte("shieldsim-impair")
	srv, err := heartshield.NewServer(heartshield.ServeOptions{Secret: secret})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	spc, err := nw.Listen("server")
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	go srv.ServePacket(spc)

	cpc, err := nw.Listen("client")
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	start := time.Now()
	remote, err := heartshield.DialPacket(cpc, faultnet.Addr("server"), secret, heartshield.DialOptions{
		SimOptions:   heartshield.SimOptions{Seed: sessionSeed},
		RetryTimeout: 20 * time.Millisecond,
		MaxRetries:   12,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer remote.Close()
	dialTime := time.Since(start)

	// Partition offsets count from here, so the windows land inside the
	// exchange run rather than racing the handshake.
	if len(parsed.partitions) > 0 {
		nw.SetPartitions(parsed.partitions...)
	}

	kindAt := func(i int) heartshield.CommandKind {
		if i%2 == 1 {
			return heartshield.SetTherapy
		}
		return heartshield.Interrogate
	}
	start = time.Now()
	var sumBER, sumCancel float64
	if pipelined {
		// Selective repeat: submissions block only while the send window
		// is full, so up to a window of exchanges ride the impaired link
		// concurrently and a lost datagram delays only its own request.
		// Results are identical to the sequential loop at the same seed.
		pend := make([]*heartshield.PendingExchange, n)
		for i := range pend {
			pend[i] = remote.StartProtectedExchange(0, kindAt(i))
		}
		for i, p := range pend {
			rep, err := p.Wait()
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: exchange %d: %v\n", i, err)
				os.Exit(1)
			}
			sumBER += rep.EavesdropperBER
			sumCancel += rep.CancellationDB
		}
	} else {
		for i := 0; i < n; i++ {
			rep, err := remote.ProtectedExchange(kindAt(i))
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: exchange %d: %v\n", i, err)
				os.Exit(1)
			}
			sumBER += rep.EavesdropperBER
			sumCancel += rep.CancellationDB
		}
	}
	elapsed := time.Since(start)

	m, err := remote.SessionMetrics()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	st := nw.Stats()
	mode := "sequential"
	if pipelined {
		mode = "pipelined"
	}
	fmt.Printf("impaired datagram session (%s, impair seed %d, session seed %d, %s):\n", spec, impairSeed, sessionSeed, mode)
	fmt.Printf("  %d exchanges in %v (%.2f ms/exchange, handshake %v): mean BER %.4f, mean cancellation %.2f dB\n",
		n, elapsed.Round(time.Millisecond), float64(elapsed.Microseconds())/1000/float64(n),
		dialTime.Round(time.Millisecond), sumBER/float64(n), sumCancel/float64(n))
	fmt.Printf("  client: retransmits=%d timeouts=%d\n", m.ClientRetransmits, m.ClientTimeouts)
	fmt.Printf("  server: cachedResends=%d replayDrops=%d windowAccepts=%d rekeys=%d\n",
		m.Retransmits, m.ReplayDrops, m.WindowAccepts, m.Rekeys)
	fmt.Printf("  faultnet: sent=%d delivered=%d dropped=%d dupped=%d reordered=%d corrupted=%d overflowed=%d noRoute=%d partitionDrops=%d\n",
		st.Sent, st.Delivered, st.Dropped, st.Dupped, st.Reordered, st.Corrupted,
		st.Overflowed, st.NoRoute, st.PartitionDrops)
}

// printSessionMetrics prints the session's STATUS-METRICS when asked.
func printSessionMetrics(remote *heartshield.RemoteSimulation, enabled bool) {
	if !enabled {
		return
	}
	m, err := remote.SessionMetrics()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return
	}
	fmt.Printf("[session %d metrics: protocol v%d exchanges=%d batches=%d batched=%d attacks=%d experiments=%d pings=%d errors=%d inflightHWM=%d sealedB=%d openedB=%d rekeys=%d srvRetransmits=%d replayDrops=%d windowAccepts=%d progressFrames=%d cliRetransmits=%d cliTimeouts=%d]\n",
		m.SessionID, m.Protocol, m.Exchanges, m.Batches, m.BatchedExchanges,
		m.Attacks, m.Experiments, m.Pings, m.Errors, m.InFlightHWM,
		m.BytesSealed, m.BytesOpened, m.Rekeys,
		m.Retransmits, m.ReplayDrops, m.WindowAccepts, m.ProgressFrames, m.ClientRetransmits, m.ClientTimeouts)
}
