// Command shieldsim regenerates the paper's tables and figures on the
// simulated testbed and prints the same rows/series the paper reports —
// locally, or remotely against a running shieldd session server.
//
// Usage:
//
//	shieldsim -list
//	shieldsim -run fig7
//	shieldsim -run all -quick
//	shieldsim -run fig11 -trials 100 -seed 7
//	shieldsim -server 127.0.0.1:7700 -secret swordfish -run fig7 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"heartshield"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment name, or 'all'")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		trials  = flag.Int("trials", 0, "per-point trials (0 = experiment default)")
		quick   = flag.Bool("quick", false, "reduced trial counts")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel scenario workers (output is identical for any value)")
		server  = flag.String("server", "", "run experiments remotely on this shieldd address")
		secret  = flag.String("secret", "", "pairing secret for -server")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments (use -run <name> or -run all):")
		for _, e := range heartshield.Experiments() {
			fmt.Printf("  %-18s %s\n", e.Name, e.Title)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := heartshield.ExperimentConfig{Seed: *seed, Trials: *trials, Quick: *quick, Workers: *workers}
	names := []string{*run}
	if *run == "all" {
		names = names[:0]
		seen := map[string]bool{}
		for _, e := range heartshield.Experiments() {
			if e.Name == "fig10" { // measured jointly with fig9
				continue
			}
			if !seen[e.Name] {
				names = append(names, e.Name)
				seen[e.Name] = true
			}
		}
	}

	var remote *heartshield.RemoteSimulation
	if *server != "" {
		var err error
		remote, err = heartshield.Dial(*server, []byte(*secret),
			heartshield.DialOptions{SimOptions: heartshield.SimOptions{Seed: *seed}})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer remote.Close()
		fmt.Printf("[session %d on %s]\n\n", remote.SessionID(), *server)
	}

	for _, name := range names {
		start := time.Now()
		var rendered string
		if remote != nil {
			out, err := remote.RunExperiment(name, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			rendered = out
		} else {
			res, err := heartshield.RunExperiment(name, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			rendered = res.Render()
		}
		fmt.Print(rendered)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
