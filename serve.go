package heartshield

import (
	"fmt"
	"net"
	"time"

	"heartshield/internal/metrics"
	"heartshield/internal/shieldd"
	"heartshield/internal/wire"
)

// ErrServerBusy reports that the server shed a request or handshake
// under overload. Match with errors.Is.
var ErrServerBusy = shieldd.ErrServerBusy

// ErrProtocolDowngrade reports that the negotiated wire version fell
// below DialOptions.MinProtocol. Match with errors.Is.
var ErrProtocolDowngrade = shieldd.ErrDowngrade

// ServeOptions configures a shield session server.
type ServeOptions struct {
	// Secret is the provisioned master pairing secret shared with
	// authorized programmers; per-session keys are derived from it.
	// Required.
	Secret []byte
	// MaxSessions bounds concurrently active sessions (default 64);
	// further handshakes queue until a slot frees.
	MaxSessions int
	// ExperimentWorkers caps the deterministic per-point fan-out of
	// remotely requested experiments (default 1).
	ExperimentWorkers int
	// MaxExtraIMDs caps the batched multi-IMD size a session may request
	// (default 8).
	MaxExtraIMDs int
	// InFlightPerSession bounds how many pipelined wire-v2 requests one
	// session may have outstanding (default 16); beyond it, transport
	// backpressure applies.
	InFlightPerSession int
	// IdleTimeout, when positive, reaps sessions with no traffic and no
	// in-flight work for this long, returning their scenarios to the
	// pool. Clients hold sessions open with Ping keepalives and may
	// auto-reconnect with a fresh handshake after a reap. Zero disables.
	IdleTimeout time.Duration
	// AdmissionWait selects what happens to a handshake when every
	// session slot is taken: zero queues until a slot frees (the
	// default), negative sheds immediately with a BUSY response,
	// positive waits up to that long before shedding.
	AdmissionWait time.Duration
	// HandshakeRate, when positive, rate-limits datagram handshakes per
	// source address to this many per second (burst HandshakeBurst,
	// default 4). Only cookie-verified addresses are metered.
	HandshakeRate  float64
	HandshakeBurst int
	// MaxInFlightGlobal, when positive, bounds scenario/experiment work
	// in flight across all sessions; over-budget requests are answered
	// BUSY instead of queueing.
	MaxInFlightGlobal int
	// MaxProtocol caps the wire protocol version the server will
	// negotiate (0 = highest supported). Setting it below 4 disables the
	// forward-secret v4 handshake — useful only for staged rollouts.
	MaxProtocol uint8
	// TicketLifetime bounds how long a v4 resumption ticket stays
	// redeemable (and how often the ticket-sealing key rotates).
	// Zero means 5 minutes.
	TicketLifetime time.Duration
	// BusyRetryAfter is the retry-after hint carried in BUSY responses
	// (default 250ms).
	BusyRetryAfter time.Duration
}

// Server is a running shield session service: it owns a pool of recycled
// testbed scenarios and serves the securelink-sealed wire protocol over
// any net.Conn transport. Results are deterministic per session seed
// regardless of concurrency, pooling, or transport.
type Server struct {
	s *shieldd.Server
}

// NewServer builds a session server.
func NewServer(opt ServeOptions) (*Server, error) {
	s, err := shieldd.NewServer(shieldd.ServerConfig{
		Secret:             opt.Secret,
		MaxSessions:        opt.MaxSessions,
		ExperimentWorkers:  opt.ExperimentWorkers,
		MaxExtraIMDs:       opt.MaxExtraIMDs,
		InFlightPerSession: opt.InFlightPerSession,
		IdleTimeout:        opt.IdleTimeout,
		AdmissionWait:      opt.AdmissionWait,
		HandshakeRate:      opt.HandshakeRate,
		HandshakeBurst:     opt.HandshakeBurst,
		MaxInFlightGlobal:  opt.MaxInFlightGlobal,
		BusyRetryAfter:     opt.BusyRetryAfter,
		MaxProtocol:        opt.MaxProtocol,
		TicketLifetime:     opt.TicketLifetime,
	})
	if err != nil {
		return nil, err
	}
	return &Server{s: s}, nil
}

// ServerMetrics is a point-in-time snapshot of server-wide counters
// (sessions, request mix, sealed/opened traffic) — what the cmd/shieldd
// -metrics flag dumps periodically.
type ServerMetrics struct {
	TotalSessions    uint64
	ActiveSessions   int64
	ReapedSessions   uint64
	TotalExchanges   uint64
	TotalBatches     uint64
	TotalAttacks     uint64
	TotalExperiments uint64
	TotalPings       uint64
	// TotalRetransmits counts responses re-sent from datagram-session
	// dedup caches (the server-side cost of transport loss).
	TotalRetransmits uint64
	// TotalProgressFrames counts streamed EXPERIMENT-PROGRESS frames
	// written to wire-v3 sessions.
	TotalProgressFrames uint64
	BytesSealed         uint64
	BytesOpened         uint64
	Rekeys              uint64
	ReplayDrops         uint64
	// LateDrops counts frames that arrived behind the securelink receive
	// window; WindowAccepts counts out-of-order frames it absorbed.
	LateDrops     uint64
	WindowAccepts uint64
	// Overload/admission counters: stateless-cookie activity on datagram
	// handshakes, BUSY answers at admission and inside sessions, and
	// handshakes dropped by the per-peer rate limiter.
	CookiesSent    uint64
	CookieRejects  uint64
	ShedHandshakes uint64
	ShedRequests   uint64
	RateLimited    uint64
	// PooledScenarios is the idle scenario-pool depth; LiveSessions,
	// LiveInFlight, and LiveInFlightHWM aggregate the live sessions'
	// gauges at snapshot time (current total pipelining depth and the
	// deepest per-session high-water mark).
	PooledScenarios int
	LiveSessions    int
	LiveInFlight    int64
	LiveInFlightHWM int64
}

// String renders the snapshot as one log line.
func (m ServerMetrics) String() string { return metrics.ServerSnapshot(m).String() }

// Metrics snapshots the server's aggregate counters.
func (s *Server) Metrics() ServerMetrics {
	return ServerMetrics(s.s.Metrics())
}

// Serve accepts and serves sessions until the listener is closed.
func (s *Server) Serve(l net.Listener) error { return s.s.Serve(l) }

// ServePacket serves datagram sessions from a packet socket (UDP, or
// any net.PacketConn such as an in-process fault-injection network)
// until the socket is closed. Datagram sessions speak wire protocol v2
// with client-side retransmission and server-side request deduplication,
// so exchanges complete — and stay deterministic per seed — over links
// that drop, duplicate, and reorder datagrams.
func (s *Server) ServePacket(pc net.PacketConn) error { return s.s.ServePacket(pc) }

// Pipe opens an in-process session (zero-network transport) against this
// server.
func (s *Server) Pipe(opt DialOptions) (*RemoteSimulation, error) {
	c, err := s.s.Pipe(opt.session())
	if err != nil {
		return nil, err
	}
	return &RemoteSimulation{c: c}, nil
}

// Serve runs a session server on the listener until it is closed — the
// one-call entry point cmd/shieldd uses.
func Serve(l net.Listener, opt ServeOptions) error {
	s, err := NewServer(opt)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// DialOptions configures a remote session.
type DialOptions struct {
	// SimOptions selects the simulated world, exactly as NewSimulation
	// does for the in-process path; equal seeds give equal results on
	// either path.
	SimOptions
	// ExtraIMDs adds additional implants (same model, distinct serials)
	// to the session's shared medium; ProtectedExchangeWith addresses
	// them by index (0 = primary).
	ExtraIMDs int
	// Protocol caps the announced wire version (0 = highest supported).
	// Setting 1 forces a strict request/response v1 session.
	Protocol uint8
	// MinProtocol, when nonzero, refuses to complete a session below
	// that wire version (ErrProtocolDowngrade). Deploy MinProtocol=4 to
	// pin the forward-secret handshake once every server is upgraded;
	// the default tolerates older servers, like TLS version fallback.
	MinProtocol uint8
	// AutoReconnect makes a dialed session transparently re-dial and
	// re-handshake after the server's idle reaper (or a network fault)
	// closes the connection and no requests are in flight. The fresh
	// session restarts the deterministic result stream at the seed.
	AutoReconnect bool
	// RetryTimeout is the initial per-request retransmission timeout on
	// datagram sessions (0 = 250ms), doubling per retransmit. Ignored on
	// stream transports.
	RetryTimeout time.Duration
	// MaxRetries bounds per-request retransmissions on datagram sessions
	// before the call fails (0 = 8). Ignored on stream transports.
	MaxRetries int
	// Window bounds the client-side send window: how many pipelined
	// requests may await responses before submission blocks (0 = 16,
	// matching the server's default per-session in-flight window).
	Window int
}

func (o DialOptions) session() shieldd.SessionOptions {
	return shieldd.SessionOptions{
		Seed:               o.Seed,
		Location:           o.Location,
		HighPowerAdversary: o.HighPowerAdversary,
		FlatJam:            o.FlatJam,
		DigitalCancel:      o.DigitalCancel,
		Concerto:           o.Concerto,
		ExtraIMDs:          o.ExtraIMDs,
		Protocol:           o.Protocol,
		MinProtocol:        o.MinProtocol,
		AutoReconnect:      o.AutoReconnect,
		RetryTimeout:       o.RetryTimeout,
		MaxRetries:         o.MaxRetries,
		Window:             o.Window,
	}
}

// RemoteSimulation is a Simulation driven over a shieldd session: the
// same exchanges and attack trials, executed server-side in the session's
// own deterministic world, sealed end-to-end with securelink.
type RemoteSimulation struct {
	c *shieldd.Client
}

// Dial opens a TCP session with a shield session server.
func Dial(addr string, secret []byte, opt DialOptions) (*RemoteSimulation, error) {
	c, err := shieldd.Dial(addr, secret, opt.session())
	if err != nil {
		return nil, err
	}
	return &RemoteSimulation{c: c}, nil
}

// DialUDP opens a datagram session with a shield session server's UDP
// listener. The session speaks wire v2 over one datagram per sealed
// frame, with transparent client-side retransmission; retry counts are
// surfaced in SessionMetrics and TransportStats rather than as errors.
func DialUDP(addr string, secret []byte, opt DialOptions) (*RemoteSimulation, error) {
	c, err := shieldd.DialUDP(addr, secret, opt.session())
	if err != nil {
		return nil, err
	}
	return &RemoteSimulation{c: c}, nil
}

// DialPacket opens a datagram session over an established packet socket
// against the server at peer — the transport-agnostic form of DialUDP,
// used to run sessions through in-process fault-injection networks. The
// client becomes the socket's sole reader.
func DialPacket(pc net.PacketConn, peer net.Addr, secret []byte, opt DialOptions) (*RemoteSimulation, error) {
	c, err := shieldd.NewPacketClient(pc, peer, secret, opt.session())
	if err != nil {
		return nil, err
	}
	return &RemoteSimulation{c: c}, nil
}

// SessionID returns the server-assigned session identifier.
func (r *RemoteSimulation) SessionID() uint64 { return r.c.SessionID() }

func wireCmd(kind CommandKind) uint8 {
	if kind == SetTherapy {
		return wire.CmdSetTherapy
	}
	return wire.CmdInterrogate
}

// ProtectedExchange runs one shield-proxied exchange with the primary
// IMD, equivalent to Simulation.ProtectedExchange at the same seed.
func (r *RemoteSimulation) ProtectedExchange(kind CommandKind) (ExchangeReport, error) {
	return r.ProtectedExchangeWith(0, kind)
}

// ProtectedExchangeWith runs one shield-proxied exchange with the implant
// at the given index (batched multi-IMD sessions).
func (r *RemoteSimulation) ProtectedExchangeWith(imdIdx int, kind CommandKind) (ExchangeReport, error) {
	var rep ExchangeReport
	resp, err := r.c.Exchange(imdIdx, wireCmd(kind))
	if err != nil {
		return rep, err
	}
	rep.Response = resp.Response
	rep.ResponseCommand = resp.ResponseCommand
	rep.EavesdropperBER = resp.EavesBER
	rep.CancellationDB = resp.CancellationDB
	return rep, nil
}

// PendingExchange is an in-flight pipelined exchange started with
// StartProtectedExchange. Wait blocks for its result; results complete
// in submission order (the server executes exchanges in request order
// regardless of how the transport delivers them).
type PendingExchange struct {
	call *shieldd.Call
}

// Wait blocks until the exchange completes and returns its report.
func (p *PendingExchange) Wait() (ExchangeReport, error) {
	var rep ExchangeReport
	m, err := p.call.Wait()
	if err != nil {
		return rep, err
	}
	resp, ok := m.(*wire.ExchangeResp)
	if !ok {
		return rep, fmt.Errorf("heartshield: unexpected response %T", m)
	}
	rep.Response = resp.Response
	rep.ResponseCommand = resp.ResponseCommand
	rep.EavesdropperBER = resp.EavesBER
	rep.CancellationDB = resp.CancellationDB
	return rep, nil
}

// StartProtectedExchange submits a shield-proxied exchange with the
// implant at imdIdx without waiting for the result, so one goroutine
// can keep a full send window of exchanges in flight (on datagram
// sessions, a lost request then delays only itself — the selective
// repeat layer retransmits just the missing ID). It blocks only while
// the client send window (DialOptions.Window) is full. Results are
// deterministic in submission order, identical to the same sequence of
// blocking ProtectedExchangeWith calls. Unlike the blocking calls, a
// BUSY shed under server overload surfaces as an error (matching
// ErrServerBusy via errors.Is) instead of being retried transparently.
func (r *RemoteSimulation) StartProtectedExchange(imdIdx int, kind CommandKind) *PendingExchange {
	return &PendingExchange{call: r.c.Go(&wire.ExchangeReq{IMD: uint8(imdIdx), Cmd: wireCmd(kind)})}
}

// BatchItem addresses one exchange inside ProtectedExchangeBatch.
type BatchItem struct {
	// IMD is the implant index (0 = primary).
	IMD int
	// Command is the exchange's command kind.
	Command CommandKind
}

// ProtectedExchangeBatch runs up to 256 protected exchanges in one
// sealed round trip (the wire-v2 BATCH-EXCHANGE), amortizing sealing
// and framing. Results arrive in item order and are identical to the
// same items run as individual ProtectedExchangeWith calls.
func (r *RemoteSimulation) ProtectedExchangeBatch(items []BatchItem) ([]ExchangeReport, error) {
	wireItems := make([]wire.ExchangeItem, len(items))
	for i, it := range items {
		wireItems[i] = wire.ExchangeItem{IMD: uint8(it.IMD), Cmd: wireCmd(it.Command)}
	}
	results, err := r.c.BatchExchange(wireItems)
	if err != nil {
		return nil, err
	}
	reports := make([]ExchangeReport, len(results))
	for i, res := range results {
		reports[i] = ExchangeReport{
			Response:        res.Response,
			ResponseCommand: res.ResponseCommand,
			EavesdropperBER: res.EavesBER,
			CancellationDB:  res.CancellationDB,
		}
	}
	return reports, nil
}

// Ping sends a keepalive probe; on a wire-v2 session the server answers
// ahead of any queued scenario work and the probe resets the idle-reap
// clock.
func (r *RemoteSimulation) Ping() error { return r.c.Ping() }

// SessionMetrics reports this session's counters (the STATUS-METRICS
// frame): request mix, batching, pipelining depth, link traffic, and —
// on datagram sessions — the transport-level retransmission activity on
// both sides, so loss is observable instead of silently absorbed by the
// retry layer.
type SessionMetrics struct {
	SessionID        uint64
	Protocol         uint8
	Exchanges        uint64
	Batches          uint64
	BatchedExchanges uint64
	Attacks          uint64
	Experiments      uint64
	Pings            uint64
	Errors           uint64
	// Retransmits counts responses the server re-sent from its dedup
	// cache (a request retransmit arrived after the original response
	// was lost). Always 0 on stream transports.
	Retransmits uint64
	Rekeys      uint64
	ReplayDrops uint64
	// WindowAccepts counts out-of-order frames the server's securelink
	// receive window absorbed.
	WindowAccepts uint64
	BytesSealed   uint64
	BytesOpened   uint64
	InFlight      uint32
	InFlightHWM   uint32
	// Shed counts this session's requests answered BUSY by the global
	// load-shedding gate.
	Shed uint64
	// ProgressFrames counts streamed EXPERIMENT-PROGRESS frames the
	// server wrote to this session (wire v3; always 0 on v1/v2).
	ProgressFrames uint64
	// ClientRetransmits and ClientTimeouts are the client-side retry
	// counters (local, not from the wire): request datagrams re-sent,
	// and requests abandoned after exhausting retransmission. Always 0
	// on stream transports.
	ClientRetransmits uint64
	ClientTimeouts    uint64
}

// SessionMetrics returns the session's STATUS-METRICS snapshot merged
// with the client-side transport retry counters.
func (r *RemoteSimulation) SessionMetrics() (SessionMetrics, error) {
	m, err := r.c.Metrics()
	if err != nil {
		return SessionMetrics{}, err
	}
	ts := r.c.TransportStats()
	return SessionMetrics{
		SessionID:         m.SessionID,
		Protocol:          m.Protocol,
		Exchanges:         m.Exchanges,
		Batches:           m.Batches,
		BatchedExchanges:  m.BatchedExchanges,
		Attacks:           m.Attacks,
		Experiments:       m.Experiments,
		Pings:             m.Pings,
		Errors:            m.Errors,
		Retransmits:       m.Retransmits,
		Rekeys:            m.Rekeys,
		ReplayDrops:       m.ReplayDrops,
		WindowAccepts:     m.WindowAccepts,
		BytesSealed:       m.BytesSealed,
		BytesOpened:       m.BytesOpened,
		InFlight:          m.InFlight,
		InFlightHWM:       m.InFlightHWM,
		Shed:              m.Shed,
		ProgressFrames:    m.ProgressFrames,
		ClientRetransmits: ts.Retransmits,
		ClientTimeouts:    ts.Timeouts,
	}, nil
}

// TransportStats reports the client-side transport counters of a
// session: datagram retries (always zero on stream transports) and
// streamed experiment progress frames received.
type TransportStats struct {
	// Retransmits is the number of request datagrams re-sent after a
	// retry timeout.
	Retransmits uint64
	// Timeouts is the number of requests that failed after exhausting
	// every retransmission.
	Timeouts uint64
	// ProgressFrames is the number of streamed EXPERIMENT-PROGRESS
	// frames received (wire v3 sessions only).
	ProgressFrames uint64
}

// TransportStats returns the session's client-side retry counters.
func (r *RemoteSimulation) TransportStats() TransportStats {
	return TransportStats(r.c.TransportStats())
}

// Attack runs one unauthorized-command trial, equivalent to
// Simulation.Attack at the same seed.
func (r *RemoteSimulation) Attack(kind CommandKind, shieldOn bool) (AttackReport, error) {
	var rep AttackReport
	resp, err := r.c.Attack(wireCmd(kind), shieldOn)
	if err != nil {
		return rep, err
	}
	rep.ShieldOn = shieldOn
	rep.IMDResponded = resp.IMDResponded
	rep.TherapyChanged = resp.TherapyChanged
	rep.ShieldJammed = resp.ShieldJammed
	rep.Alarmed = resp.Alarmed
	rep.AdversaryRSSIDBm = resp.AdversaryRSSIDBm
	return rep, nil
}

// RunExperiment runs a registry experiment server-side and returns its
// rendered table/figure.
func (r *RemoteSimulation) RunExperiment(name string, cfg ExperimentConfig) (string, error) {
	return r.c.Experiment(wire.ExperimentReq{
		Name:    name,
		Seed:    cfg.Seed,
		Trials:  int32(cfg.Trials),
		Quick:   cfg.Quick,
		Workers: uint8(min(cfg.Workers, 255)),
	})
}

// ExperimentProgress is one streamed progress report from a server-side
// experiment run.
type ExperimentProgress struct {
	// Done and Total count completed trials out of the run's total.
	Done, Total int
	// Stage names what is running (currently the experiment name).
	Stage string
}

// RunExperimentStream runs a registry experiment server-side, invoking
// onProgress with incremental trial-completion reports while it runs,
// and returns the rendered table/figure. Streaming requires a wire-v3
// session; on older sessions the experiment still runs, the answer
// arrives in one frame, and onProgress is never called. onProgress runs
// on the session's read loop: it must return quickly and must not call
// back into this session synchronously. The rendered result is
// byte-identical to RunExperiment with the same configuration.
func (r *RemoteSimulation) RunExperimentStream(name string, cfg ExperimentConfig, onProgress func(ExperimentProgress)) (string, error) {
	var cb func(*wire.ExperimentProgress)
	if onProgress != nil {
		cb = func(p *wire.ExperimentProgress) {
			onProgress(ExperimentProgress{Done: int(p.Done), Total: int(p.Total), Stage: p.Stage})
		}
	}
	return r.c.ExperimentStream(wire.ExperimentReq{
		Name:    name,
		Seed:    cfg.Seed,
		Trials:  int32(cfg.Trials),
		Quick:   cfg.Quick,
		Workers: uint8(min(cfg.Workers, 255)),
	}, cb)
}

// Status returns the server's session/exchange counters.
func (r *RemoteSimulation) Status() (ServerStatus, error) {
	st, err := r.c.Status()
	if err != nil {
		return ServerStatus{}, err
	}
	return ServerStatus{
		ActiveSessions:   int(st.ActiveSessions),
		PooledScenarios:  int(st.PooledScenarios),
		TotalSessions:    st.TotalSessions,
		TotalExchanges:   st.TotalExchanges,
		TotalExperiments: st.TotalExperiments,
	}, nil
}

// Close ends the session.
func (r *RemoteSimulation) Close() error { return r.c.Close() }

// ServerStatus reports server-wide counters.
type ServerStatus struct {
	ActiveSessions   int
	PooledScenarios  int
	TotalSessions    uint64
	TotalExchanges   uint64
	TotalExperiments uint64
}
