package heartshield

// Safety-property tests: the design requirements of §1 that motivated a
// shield-external architecture in the first place.

import (
	"strings"
	"testing"

	"heartshield/internal/imd"
	"heartshield/internal/modem"
	"heartshield/internal/testbed"
)

// §1 "Safety": medical personnel must always be able to reach the IMD by
// removing or powering off the shield — no credentials involved. With the
// shield inactive, a plain programmer session works directly.
func TestEmergencyAccessWhenShieldRemoved(t *testing.T) {
	sc := testbed.NewScenario(testbed.Options{Seed: 200})
	sc.NewTrial()
	// No shield activity at all: the programmer talks straight to the IMD.
	b := sc.Prog.TransmitAfterLBT(sc.Channel(), 0, sc.Prog.Interrogate())
	if b == nil {
		t.Fatal("LBT failed on an idle channel")
	}
	re := sc.IMD.ProcessWindow(b.Start, int(b.End()-b.Start)+2000)
	if !re.Responded {
		t.Fatal("direct access failed with the shield off — the safety property is broken")
	}
	rx, ok := sc.Prog.Receive(sc.Channel(), re.ResponseBurst.Start-100,
		int(re.ResponseBurst.End()-re.ResponseBurst.Start)+300)
	if !ok || rx.Frame == nil {
		t.Fatal("programmer could not read the unjammed response")
	}
	if !strings.HasPrefix(string(rx.Frame.Payload), "PATIENT:") {
		t.Fatalf("unexpected payload %q", rx.Frame.Payload)
	}
}

// §3.1: if the IMD initiates an emergency transmission (life-threatening
// condition), nothing blocks it — the shield makes no attempt to jam
// unsolicited IMD transmissions it did not anticipate, so any nearby
// receiver (e.g. an emergency responder's programmer) can read it.
func TestEmergencyTransmissionReachable(t *testing.T) {
	sc := testbed.NewScenario(testbed.Options{Seed: 201})
	sc.CalibrateShieldRSSI()
	sc.NewTrial()
	burst := sc.IMD.EmergencyTransmit(5000)
	rx, ok := sc.Prog.Receive(sc.Channel(), burst.Start-200,
		int(burst.End()-burst.Start)+400)
	if !ok || rx.Frame == nil {
		t.Fatal("emergency transmission not received")
	}
	if !strings.HasPrefix(string(rx.Frame.Payload), "EMERGENCY:") {
		t.Fatalf("payload %q", rx.Frame.Payload)
	}
}

// Two independently protected patients share the band: each shield jams
// only commands addressed to its own IMD, and both relays keep working on
// their separate MICS channels.
func TestTwoProtectedSystemsCoexist(t *testing.T) {
	// Patient A on channel 0.
	scA := testbed.NewScenario(testbed.Options{Seed: 202, MICSChannel: 0})
	scA.CalibrateShieldRSSI()
	// Patient B (Concerto) on channel 5 of the same conceptual band; the
	// simulation uses separate scenario instances since the patients are
	// far apart, which is exactly the MICS channel-separation assumption.
	scB := testbed.NewScenario(testbed.Options{
		Seed: 203, MICSChannel: 5, Profile: imd.ConcertoCRT,
	})
	scB.CalibrateShieldRSSI()

	for i := 0; i < 3; i++ {
		for _, sc := range []*testbed.Scenario{scA, scB} {
			sc.NewTrial()
			sc.PrepareShield()
			pending, err := sc.Shield.PlaceCommand(sc.InterrogateFrame(), 0)
			if err != nil {
				t.Fatal(err)
			}
			sc.IMD.ProcessWindow(0, 12000)
			if res := pending.Collect(); res.Response == nil {
				t.Fatalf("round %d: relay failed for %s", i, sc.IMD.Profile.Name)
			}
		}
	}

	// Shield A must not jam traffic addressed to IMD B (different serial,
	// even if it appeared on A's channel).
	scA.NewTrial()
	scA.PrepareShield()
	frameB := scB.InterrogateFrame() // Concerto serial
	burst := scA.Prog.Transmit(scA.Channel(), 500, frameB)
	rep := scA.Shield.DefendWindow(0, int(burst.End())+1000)
	if rep.Matched || rep.Jammed {
		t.Fatalf("shield A jammed traffic for patient B's device: %+v", rep)
	}
}

// The modem the whole system shares must agree on timing constants with
// the IMD profiles (a drift here would silently break the jam window).
func TestTimingConstantsConsistency(t *testing.T) {
	cfg := modem.DefaultFSK
	p := imd.VirtuosoICD
	maxFrame := cfg.Duration(cfg.SamplesForBits(8 * (4 + 2 + 10 + 2 + 110 + 2)))
	if maxFrame > p.MaxPacket {
		t.Fatalf("longest frame %.4fs exceeds the profile's MaxPacket %.4fs — the jam window would be too short", maxFrame, p.MaxPacket)
	}
	if p.T1 >= p.T2 {
		t.Fatal("T1 must precede T2")
	}
}
